//! The paper's analytical execution model, Eqs. (1)–(6).
//!
//! * Eq. (1): conventional sharing — serialized cycles plus context
//!   switches plus the one-time initialization.
//! * Eqs. (2)/(3): virtualized execution for the two pipeline regimes
//!   (whichever transfer direction dominates becomes the steady-state
//!   bottleneck).
//! * Eq. (4): their closed combination.
//! * Eq. (5): speedup.
//! * Eq. (6): the upper bound `S_max` as `Ntask → ∞`.

use crate::params::ExecutionProfile;

/// The analytical model for one benchmark profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupModel {
    /// The measured profile the model is evaluated on.
    pub profile: ExecutionProfile,
}

impl SpeedupModel {
    /// Wrap a profile.
    pub fn new(profile: ExecutionProfile) -> Self {
        assert!(profile.is_valid(), "invalid execution profile");
        SpeedupModel { profile }
    }

    /// Eq. (1): `Ttotal_no_vt` for `n` tasks, in ms.
    ///
    /// `(n−1)(Tctx + Tin + Tcomp + Tout) + Tinit + Tin + Tcomp + Tout`
    pub fn total_no_vt(&self, n: u32) -> f64 {
        assert!(n >= 1);
        let p = &self.profile;
        (n as f64 - 1.0) * (p.t_ctx_switch + p.cycle()) + p.t_init + p.cycle()
    }

    /// Eq. (2): virtualized total when `Tin ≥ Tout` (H2D-bound pipeline).
    pub fn total_vt_in_bound(&self, n: u32) -> f64 {
        let p = &self.profile;
        n as f64 * p.t_data_in + p.t_comp + p.t_data_out
    }

    /// Eq. (3): virtualized total when `Tin < Tout` (D2H-bound pipeline).
    pub fn total_vt_out_bound(&self, n: u32) -> f64 {
        let p = &self.profile;
        p.t_data_in + p.t_comp + n as f64 * p.t_data_out
    }

    /// Eq. (4): `Ttotal_vt = n·MAX(Tin,Tout) + Tcomp + MIN(Tin,Tout)`.
    pub fn total_vt(&self, n: u32) -> f64 {
        assert!(n >= 1);
        let p = &self.profile;
        n as f64 * p.max_io() + p.t_comp + p.min_io()
    }

    /// Eq. (5): theoretical speedup `S = Ttotal_no_vt / Ttotal_vt`.
    pub fn speedup(&self, n: u32) -> f64 {
        self.total_no_vt(n) / self.total_vt(n)
    }

    /// Eq. (6): `S_max = (Tctx + Tin + Tcomp + Tout) / MAX(Tin, Tout)`,
    /// the `n → ∞` limit of Eq. (5). Infinite for zero-I/O profiles.
    pub fn s_max(&self) -> f64 {
        let p = &self.profile;
        (p.t_ctx_switch + p.cycle()) / p.max_io()
    }

    /// Relative deviation between a measured speedup and the theoretical
    /// one at `n` tasks (paper Table III's "Theoretical Deviation").
    pub fn deviation(&self, n: u32, measured_speedup: f64) -> f64 {
        let s = self.speedup(n);
        (s - measured_speedup).abs() / s
    }
}

/// Extension of the paper's model for the chunked staging pipeline: the
/// makespan of one payload whose shm→pinned staging (`t_stage`) and
/// pinned→device copy (`t_xfer`) are split into `k` equal chunks, with the
/// staging of chunk `i+1` overlapped against the copy of chunk `i` (a
/// two-stage software pipeline):
///
/// `T(k) = s + x + (k−1)·max(s, x)`, where `s = t_stage/k`, `x = t_xfer/k`.
///
/// `k = 1` degenerates to the serial `t_stage + t_xfer`; as `k → ∞` the
/// makespan approaches `max(t_stage, t_xfer)` — the classic pipeline
/// bound. Per-chunk fixed overheads are not modeled here; they are what
/// the harness sweep (`repro_pipeline`) measures empirically.
pub fn pipelined_staging(t_stage: f64, t_xfer: f64, k: u32) -> f64 {
    assert!(k >= 1, "pipeline needs at least one chunk");
    assert!(t_stage >= 0.0 && t_xfer >= 0.0);
    let s = t_stage / k as f64;
    let x = t_xfer / k as f64;
    s + x + (k as f64 - 1.0) * s.max(x)
}

/// The chunk count minimizing the pipelined makespan once each chunk also
/// pays a fixed `overhead` (shm latency + copy submit): the model behind
/// the adaptive chooser in `gv-mem`.
///
/// `pipelined_staging` simplifies to `max + min/k` (with `max`/`min` over
/// the two stage times), so the objective is
///
/// `T(k) = max(t_stage, t_xfer) + min(t_stage, t_xfer)/k + k·overhead`,
///
/// whose continuous optimum is `k* = sqrt(min/overhead)`. The returned
/// value is the exact discrete argmin (the better of `floor(k*)` and
/// `ceil(k*)`, ties to the smaller `k`), clamped to `[1, cap]`. Because
/// `k*` grows with `min(t_stage, t_xfer)`, the choice is monotone
/// non-decreasing in the payload size for fixed per-byte rates — bigger
/// transfers never pipeline less.
///
/// A non-positive `overhead` means chunking is free under the model and
/// the cap is returned outright.
pub fn optimal_chunks(t_stage: f64, t_xfer: f64, overhead: f64, cap: u32) -> u32 {
    assert!(cap >= 1, "chunk cap must allow at least one chunk");
    assert!(t_stage >= 0.0 && t_xfer >= 0.0);
    if overhead <= 0.0 {
        return cap;
    }
    let makespan = |k: u32| pipelined_staging(t_stage, t_xfer, k) + k as f64 * overhead;
    let k_star = (t_stage.min(t_xfer) / overhead).sqrt();
    let lo = (k_star.floor() as u32).clamp(1, cap);
    let hi = (k_star.ceil() as u32).clamp(1, cap);
    // Ties go to the smaller k: fewer chunks, identical predicted makespan.
    if makespan(hi) < makespan(lo) {
        hi
    } else {
        lo
    }
}

/// Cost of one demand-swap round trip under VRAM oversubscription: a
/// victim working set of `bytes` is evicted to pinned host staging (D2H at
/// `r_d2h` time units per byte) and restored on its next touch (H2D at
/// `r_h2d`), each direction tiled into `k` chunks that pay a fixed
/// `overhead` (copy submit + staging bookkeeping) apiece:
///
/// `T_swap = bytes·(r_d2h + r_h2d) + 2k·overhead`
///
/// Both directions go through the same chunked planner as payload
/// transfers, and neither overlaps anything — the GVM synchronizes the
/// evict before freeing the device memory and the restore before handing
/// the allocation back — so the model is a straight sum, not a pipeline.
/// Setting `r_h2d = 0` (or `r_d2h = 0`) prices a one-way trip.
///
/// The term closes the oversubscription trade-off: admitting a session
/// beyond VRAM is profitable when the queueing delay it avoids exceeds
/// the `T_swap` round trips its residency churn induces (`repro_quota`
/// measures the empirical side of that inequality).
pub fn swap_cost(bytes: f64, r_d2h: f64, r_h2d: f64, k: u32, overhead: f64) -> f64 {
    assert!(k >= 1, "a swap copies at least one chunk");
    assert!(bytes >= 0.0 && r_d2h >= 0.0 && r_h2d >= 0.0 && overhead >= 0.0);
    bytes * (r_d2h + r_h2d) + 2.0 * k as f64 * overhead
}

/// Per-request *transport* overhead of the GVM request path — everything a
/// request pays beyond the device copies and kernels themselves — for the
/// two wire formats (`repro_zerocopy` measures the empirical side):
///
/// * **Staged** (`zero_copy = false`): the payload crosses host memory
///   three extra times — client write into shm (`bytes_in`), the GVM's
///   shm→pinned staging copy at `SND` (`bytes_in`), the GVM's pinned→shm
///   retrieval copy at `RCV` (`bytes_out`) — plus the client's read of the
///   result (`bytes_out`), each at `r_copy` time units per byte; and the
///   `STR` barrier flush answers each of the `n` ranks with its own mq
///   send, so every rank bears a full `l_mq` queue latency.
///
/// * **Zero-copy** (`zero_copy = true`): the client writes straight into
///   the pinned staging lease (its shm write *is* the staging copy) and
///   reads the result out of the same window — one traversal per
///   direction, the GVM-side copies vanish — and the flush batches its
///   ACKs into one queue round trip, so each rank bears `l_mq / n`.
///
/// `T_staged − T_zc = (bytes_in + bytes_out)·r_copy + l_mq·(1 − 1/n)`,
/// strictly positive whenever any payload moves or `n > 1`: descriptor
/// passing is never slower under the model.
pub fn request_overhead(
    bytes_in: f64,
    bytes_out: f64,
    r_copy: f64,
    l_mq: f64,
    n: u32,
    zero_copy: bool,
) -> f64 {
    assert!(n >= 1, "a flush answers at least one rank");
    assert!(bytes_in >= 0.0 && bytes_out >= 0.0 && r_copy >= 0.0 && l_mq >= 0.0);
    let traversals = if zero_copy {
        bytes_in + bytes_out
    } else {
        2.0 * (bytes_in + bytes_out)
    };
    let flush = if zero_copy { l_mq / n as f64 } else { l_mq };
    traversals * r_copy + flush
}

/// Fixed submission cost of a flush wave under cross-rank coalescing: when
/// `ops` same-direction DMA sub-ops (or kernel launches) go down in
/// `groups` submissions instead of one apiece, only the *first* member of
/// each group pays the per-submission fixed cost `l_op` (DMA setup
/// latency, or host launch overhead) — followers ride the open engine run:
///
/// `T_fixed = groups·l_op`   (uncoalesced: `groups = ops`, so `ops·l_op`)
///
/// The predicted saving of a coalesced flush over the per-rank flush is
/// therefore `(ops − groups)·l_op` — what `DeviceStats::fused_dma_saved`
/// meters on the simulated engine and `repro_coalesce` measures end to
/// end. Per-byte copy time is unchanged by fusion (the same bytes cross
/// the bus either way), so it does not appear in the term.
pub fn coalesced_overhead(ops: u32, groups: u32, l_op: f64) -> f64 {
    assert!(
        groups >= 1 && groups <= ops,
        "a flush wave has between 1 and `ops` submissions"
    );
    assert!(l_op >= 0.0);
    groups as f64 * l_op
}

/// The saving side of [`coalesced_overhead`]: `(ops − groups)·l_op`.
pub fn coalesce_saving(ops: u32, groups: u32, l_op: f64) -> f64 {
    coalesced_overhead(ops, ops, l_op) - coalesced_overhead(ops, groups, l_op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecadd() -> SpeedupModel {
        SpeedupModel::new(ExecutionProfile::vecadd_paper())
    }

    fn ep() -> SpeedupModel {
        SpeedupModel::new(ExecutionProfile::ep_paper())
    }

    #[test]
    fn eq4_combines_eq2_and_eq3() {
        for n in 1..=16 {
            let m = vecadd();
            // vecadd: Tin > Tout → Eq. 2 branch.
            assert!((m.total_vt(n) - m.total_vt_in_bound(n)).abs() < 1e-9);
            let m = SpeedupModel::new(ExecutionProfile {
                t_data_in: 10.0,
                t_data_out: 50.0,
                ..ExecutionProfile::vecadd_paper()
            });
            assert!((m.total_vt(n) - m.total_vt_out_bound(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn table3_theoretical_speedups_reproduced() {
        // Paper Table III, EP column: plugging the paper's own Table II
        // numbers into its own Eq. (5) gives exactly the published 8.341 —
        // strong validation of the equation implementation.
        let s_ep = ep().speedup(8);
        assert!(
            (s_ep - 8.341).abs() < 0.01,
            "EP theoretical speedup {s_ep}, paper says 8.341"
        );
        // VectorAdd: the same substitution yields 3.621, not the published
        // 2.721 — the paper's printed value is not derivable from its own
        // Table II inputs (see EXPERIMENTS.md). We pin our arithmetic.
        let s_vecadd = vecadd().speedup(8);
        assert!(
            (s_vecadd - 3.621).abs() < 0.01,
            "VectorAdd theoretical speedup from Table II inputs is {s_vecadd}"
        );
    }

    #[test]
    fn speedup_at_least_one() {
        for n in 1..=64 {
            assert!(vecadd().speedup(n) >= 1.0);
            assert!(ep().speedup(n) >= 1.0);
        }
    }

    #[test]
    fn speedup_converges_to_smax_at_large_n() {
        // Note the direction: with the full (all-process) Tinit in Eq. (1),
        // S(n) can exceed S_max at small n — the one-time initialization
        // term inflates the numerator faster than n amortizes it. The
        // limit still holds.
        let m = vecadd();
        let smax = m.s_max();
        assert!(m.speedup(8) > smax, "Tinit dominates at n = 8");
        let s_big = m.speedup(10_000_000);
        assert!((smax - s_big).abs() / smax < 1e-3);
    }

    #[test]
    fn ep_smax_is_huge() {
        // EP's max I/O is 55 ns → S_max ≈ 167 million.
        assert!(ep().s_max() > 1.0e8);
    }

    #[test]
    fn no_vt_grows_linearly_with_ctx_switch() {
        let m = vecadd();
        let d = m.total_no_vt(9) - m.total_no_vt(8);
        let p = ExecutionProfile::vecadd_paper();
        assert!((d - (p.t_ctx_switch + p.cycle())).abs() < 1e-9);
    }

    #[test]
    fn deviation_matches_definition() {
        let m = vecadd();
        let s = m.speedup(8);
        assert!((m.deviation(8, s) - 0.0).abs() < 1e-12);
        assert!((m.deviation(8, s * 0.8) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pipelined_staging_k1_is_serial() {
        assert!((pipelined_staging(3.0, 5.0, 1) - 8.0).abs() < 1e-12);
        assert!((pipelined_staging(0.0, 5.0, 1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_staging_monotone_in_k() {
        let mut prev = f64::INFINITY;
        for k in 1..=64 {
            let t = pipelined_staging(3.0, 5.0, k);
            assert!(t <= prev + 1e-12, "T(k) must not increase with k");
            prev = t;
        }
    }

    #[test]
    fn pipelined_staging_limit_is_max() {
        let t = pipelined_staging(3.0, 5.0, 1_000_000);
        assert!(
            (t - 5.0).abs() < 1e-4,
            "limit is max(t_stage, t_xfer), got {t}"
        );
        // Balanced stages halve the serial time in the limit.
        let t = pipelined_staging(4.0, 4.0, 1_000_000);
        assert!((t - 4.0).abs() < 1e-4);
    }

    /// Brute-force argmin of the overhead-extended makespan over 1..=cap.
    fn brute_force_k(t_stage: f64, t_xfer: f64, overhead: f64, cap: u32) -> u32 {
        let mut best = 1;
        let mut best_t = f64::INFINITY;
        for k in 1..=cap {
            let t = pipelined_staging(t_stage, t_xfer, k) + k as f64 * overhead;
            if t < best_t - 1e-12 {
                best = k;
                best_t = t;
            }
        }
        best
    }

    #[test]
    fn optimal_chunks_matches_brute_force() {
        for &(s, x, o) in &[
            (3.0, 5.0, 0.1),
            (5.0, 3.0, 0.1),
            (1.0, 1.0, 0.01),
            (0.5, 8.0, 0.25),
            (16.0, 16.0, 1.0),
            (100.0, 2.0, 0.5),
            (0.0, 4.0, 0.1),
        ] {
            for cap in [1u32, 2, 4, 8, 64] {
                let got = optimal_chunks(s, x, o, cap);
                let want = brute_force_k(s, x, o, cap);
                let t_got = pipelined_staging(s, x, got) + got as f64 * o;
                let t_want = pipelined_staging(s, x, want) + want as f64 * o;
                assert!(
                    (t_got - t_want).abs() < 1e-9,
                    "s={s} x={x} o={o} cap={cap}: got k={got} (T={t_got}), \
                     brute force k={want} (T={t_want})"
                );
            }
        }
    }

    #[test]
    fn optimal_chunks_tiny_payload_is_serial() {
        // When the overhead dwarfs the pipeline win, k = 1.
        assert_eq!(optimal_chunks(0.001, 0.002, 1.0, 8), 1);
        assert_eq!(optimal_chunks(0.0, 0.0, 0.5, 8), 1);
    }

    #[test]
    fn optimal_chunks_monotone_in_payload() {
        // Fixed per-byte rates, growing payload: k never decreases.
        let stage_rate = 0.08; // time units per MiB
        let xfer_rate = 0.06;
        let overhead = 0.02;
        let mut prev = 0;
        for mib in 1..=128u32 {
            let k = optimal_chunks(stage_rate * mib as f64, xfer_rate * mib as f64, overhead, 8);
            assert!(k >= prev, "k dropped from {prev} to {k} at {mib} MiB");
            prev = k;
        }
        assert!(prev > 1, "large payloads must pipeline");
    }

    #[test]
    fn optimal_chunks_respects_cap_and_free_overhead() {
        assert!(optimal_chunks(1e6, 1e6, 1e-9, 4) <= 4);
        assert_eq!(optimal_chunks(1e6, 1e6, 1e-9, 4), 4);
        assert_eq!(optimal_chunks(3.0, 5.0, 0.0, 6), 6);
        assert_eq!(optimal_chunks(3.0, 5.0, -1.0, 6), 6);
    }

    /// Brute-force `swap_cost` by summing the per-span times of the exact
    /// near-equal tiling the planner uses (`ceil`-sized head spans), both
    /// directions: per span `len·rate + overhead`.
    fn brute_force_swap(bytes: u64, r_d2h: f64, r_h2d: f64, k: u32) -> f64 {
        let overhead = 0.125;
        let mut t = 0.0;
        for rate in [r_d2h, r_h2d] {
            for i in 0..u64::from(k) {
                let base = bytes / u64::from(k);
                let len = base + u64::from(i < bytes % u64::from(k));
                t += len as f64 * rate + overhead;
            }
        }
        t
    }

    #[test]
    fn swap_cost_matches_per_span_sum() {
        // The tiling splits exactly (span lengths sum to `bytes`), so the
        // closed form equals the per-span brute force for any k.
        for &(bytes, d2h, h2d) in &[
            (1u64 << 20, 2e-6, 3e-6),
            (4096, 1e-3, 0.0),
            (7777, 0.5, 0.25),
        ] {
            for k in [1u32, 2, 3, 8, 16] {
                let got = swap_cost(bytes as f64, d2h, h2d, k, 0.125);
                let want = brute_force_swap(bytes, d2h, h2d, k);
                assert!(
                    (got - want).abs() < 1e-6 * want.max(1.0),
                    "bytes={bytes} k={k}: closed form {got}, span sum {want}"
                );
            }
        }
    }

    #[test]
    fn swap_cost_monotone_and_one_way() {
        // More bytes, more chunks, or faster rates never cheapen a swap.
        assert!(swap_cost(2048.0, 1e-3, 1e-3, 2, 0.1) > swap_cost(1024.0, 1e-3, 1e-3, 2, 0.1));
        assert!(swap_cost(1024.0, 1e-3, 1e-3, 8, 0.1) > swap_cost(1024.0, 1e-3, 1e-3, 2, 0.1));
        // One-way pricing: zeroing a rate drops exactly that direction.
        let round = swap_cost(1024.0, 2e-3, 3e-3, 1, 0.0);
        let out = swap_cost(1024.0, 2e-3, 0.0, 1, 0.0);
        let back = swap_cost(1024.0, 0.0, 3e-3, 1, 0.0);
        assert!((round - (out + back)).abs() < 1e-12);
    }

    /// Brute-force the staged overhead by pricing each host-memory
    /// traversal and mq send individually, exactly as the GVM issues them.
    fn brute_force_overhead(
        bytes_in: f64,
        bytes_out: f64,
        r_copy: f64,
        l_mq: f64,
        n: u32,
        zero_copy: bool,
    ) -> f64 {
        let mut t = 0.0;
        // Client write of the input (staged: into plain shm; zc: into the
        // lease — same bytes either way).
        t += bytes_in * r_copy;
        if !zero_copy {
            // GVM shm→pinned at SND and pinned→shm at RCV.
            t += bytes_in * r_copy;
            t += bytes_out * r_copy;
        }
        // Client read of the result.
        t += bytes_out * r_copy;
        // Flush ACK share: staged pays a full queue latency per rank,
        // zero-copy amortizes one latency across the n-rank batch.
        t += if zero_copy { l_mq / n as f64 } else { l_mq };
        t
    }

    #[test]
    fn request_overhead_matches_per_traversal_sum() {
        for &(bi, bo, r, l) in &[
            (1048576.0, 1048576.0, 2e-6, 0.02),
            (4096.0, 0.0, 1e-4, 0.5),
            (0.0, 8192.0, 3e-5, 0.1),
            (0.0, 0.0, 1e-3, 0.25),
        ] {
            for n in [1u32, 2, 8, 64] {
                for zc in [false, true] {
                    let got = request_overhead(bi, bo, r, l, n, zc);
                    let want = brute_force_overhead(bi, bo, r, l, n, zc);
                    assert!(
                        (got - want).abs() < 1e-9 * want.max(1.0),
                        "bi={bi} bo={bo} n={n} zc={zc}: closed form {got}, sum {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_copy_never_slower() {
        for &(bi, bo) in &[(1048576.0, 1048576.0), (4096.0, 0.0), (0.0, 0.0)] {
            for n in [1u32, 2, 8] {
                let staged = request_overhead(bi, bo, 2e-6, 0.02, n, false);
                let zc = request_overhead(bi, bo, 2e-6, 0.02, n, true);
                assert!(
                    zc <= staged,
                    "bi={bi} bo={bo} n={n}: zc {zc} > staged {staged}"
                );
                // Strict whenever payload moves or the flush batches >1 rank.
                if bi + bo > 0.0 || n > 1 {
                    assert!(zc < staged);
                }
                // The gap is exactly the two dropped GVM copies plus the
                // amortized flush latency.
                let gap = (bi + bo) * 2e-6 + 0.02 * (1.0 - 1.0 / n as f64);
                assert!((staged - zc - gap).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn request_overhead_flush_batching_amortizes() {
        // Pure-latency profile: staged is flat in n, zero-copy decays as 1/n.
        let staged: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&n| request_overhead(0.0, 0.0, 0.0, 0.4, n, false))
            .collect();
        let zc: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&n| request_overhead(0.0, 0.0, 0.0, 0.4, n, true))
            .collect();
        assert!(staged.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert!(zc.windows(2).all(|w| w[1] < w[0]));
        assert!((zc[3] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn coalesced_overhead_pays_once_per_group() {
        // 8 sub-ops in one fused submission pay one setup; unfused they
        // pay eight. The saving is exactly the elided setups.
        let l = 8.0;
        assert!((coalesced_overhead(8, 1, l) - 8.0).abs() < 1e-12);
        assert!((coalesced_overhead(8, 8, l) - 64.0).abs() < 1e-12);
        assert!((coalesce_saving(8, 1, l) - 56.0).abs() < 1e-12);
        // Degenerate: everything its own group saves nothing.
        assert_eq!(coalesce_saving(8, 8, l), 0.0);
        // Monotone: fewer groups never cost more.
        for g in 1..8u32 {
            assert!(coalesced_overhead(8, g, l) < coalesced_overhead(8, g + 1, l));
        }
    }

    #[test]
    #[should_panic(expected = "between 1 and `ops`")]
    fn coalesced_overhead_rejects_more_groups_than_ops() {
        coalesced_overhead(2, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid execution profile")]
    fn invalid_profile_rejected() {
        SpeedupModel::new(ExecutionProfile {
            t_init: -1.0,
            ..ExecutionProfile::vecadd_paper()
        });
    }
}

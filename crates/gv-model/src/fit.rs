//! Extracting model parameters from measurements.
//!
//! The paper derives its Table II profile by hand from microbenchmarks;
//! this module automates both directions:
//!
//! * [`profile_from_phases`] assembles an [`ExecutionProfile`] from the
//!   phase measurements the harness produces;
//! * [`fit_linear`] least-squares fits `turnaround(n) = a + b·n`, which for
//!   the conventional scheme recovers `b ≈ Tctx + Tin + Tcomp + Tout`
//!   (Eq. 1's slope) and for the virtualized scheme `b ≈ MAX(Tin, Tout)`
//!   (Eq. 4's slope) — a cross-check the paper performs only visually in
//!   Fig. 9.

use crate::params::ExecutionProfile;

/// Assemble a profile from per-phase measurements (ms).
pub fn profile_from_phases(
    t_init_total: f64,
    t_ctx_switch: f64,
    t_data_in: f64,
    t_comp: f64,
    t_data_out: f64,
) -> ExecutionProfile {
    ExecutionProfile {
        t_init: t_init_total,
        t_ctx_switch,
        t_data_in,
        t_comp,
        t_data_out,
    }
}

/// Ordinary least squares for `y = a + b·x`. Returns `(a, b)`.
/// Panics on fewer than two points or zero variance in `x`.
pub fn fit_linear(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Coefficient of determination R² for a linear fit.
pub fn r_squared(points: &[(f64, f64)], a: f64, b: f64) -> f64 {
    let n = points.len() as f64;
    let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Recover the per-task slope of a conventional-sharing turnaround series
/// (`(n, turnaround_ms)` pairs) — an estimate of `Tctx + cycle`.
pub fn no_vt_slope(series: &[(u32, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = series.iter().map(|&(n, t)| (n as f64, t)).collect();
    fit_linear(&pts).1
}

/// Recover the per-task slope of a virtualized turnaround series — an
/// estimate of `MAX(Tin, Tout)`.
pub fn vt_slope(series: &[(u32, f64)]) -> f64 {
    no_vt_slope(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::SpeedupModel;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|x| (x as f64, 3.0 + 2.5 * x as f64)).collect();
        let (a, b) = fit_linear(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.5).abs() < 1e-9);
        assert!((r_squared(&pts, a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_eq1_slope_from_model_series() {
        let m = SpeedupModel::new(crate::params::ExecutionProfile::vecadd_paper());
        let series: Vec<(u32, f64)> = (1..=8).map(|n| (n, m.total_no_vt(n))).collect();
        let slope = no_vt_slope(&series);
        let p = m.profile;
        assert!((slope - (p.t_ctx_switch + p.cycle())).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_eq4_slope_from_model_series() {
        let m = SpeedupModel::new(crate::params::ExecutionProfile::vecadd_paper());
        let series: Vec<(u32, f64)> = (1..=8).map(|n| (n, m.total_vt(n))).collect();
        let slope = vt_slope(&series);
        assert!((slope - m.profile.max_io()).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_close() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|x| {
                let x = x as f64;
                let noise = if (x as u64).is_multiple_of(2) {
                    0.1
                } else {
                    -0.1
                };
                (x, 10.0 + 4.0 * x + noise)
            })
            .collect();
        let (a, b) = fit_linear(&pts);
        assert!((b - 4.0).abs() < 0.01, "slope {b}");
        assert!((a - 10.0).abs() < 0.2, "intercept {a}");
        assert!(r_squared(&pts, a, b) > 0.999);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_requires_two_points() {
        fit_linear(&[(1.0, 2.0)]);
    }
}

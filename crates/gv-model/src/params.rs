//! Model parameters (paper Table I) and the published Table II profiles.

use serde::{Deserialize, Serialize};

/// The measured per-benchmark execution profile the model consumes
/// (paper Table I / Table II). All times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// `Tinit`: total time for *all* processes to initialize the GPU
    /// device and their contexts (the paper measures this for 8 processes).
    pub t_init: f64,
    /// `Tctx_switch`: average per-process context-switch cost.
    pub t_ctx_switch: f64,
    /// `Tdata_in`: average per-process host→device staging time.
    pub t_data_in: f64,
    /// `Tcomp`: average per-process kernel execution time.
    pub t_comp: f64,
    /// `Tdata_out`: average per-process device→host retrieval time.
    pub t_data_out: f64,
}

impl ExecutionProfile {
    /// Paper Table II, VectorAdd column.
    pub fn vecadd_paper() -> Self {
        ExecutionProfile {
            t_init: 1519.386,
            t_ctx_switch: 148.226,
            t_data_in: 135.874,
            t_comp: 0.038,
            t_data_out: 66.656,
        }
    }

    /// Paper Table II, EP column.
    pub fn ep_paper() -> Self {
        ExecutionProfile {
            t_init: 1513.555,
            t_ctx_switch: 220.599,
            t_data_in: 0.0,
            t_comp: 8951.346,
            t_data_out: 0.000055,
        }
    }

    /// One conventional execution cycle (send + compute + retrieve).
    pub fn cycle(&self) -> f64 {
        self.t_data_in + self.t_comp + self.t_data_out
    }

    /// The larger of the two transfer times (the virtualized bottleneck).
    pub fn max_io(&self) -> f64 {
        self.t_data_in.max(self.t_data_out)
    }

    /// The smaller of the two transfer times.
    pub fn min_io(&self) -> f64 {
        self.t_data_in.min(self.t_data_out)
    }

    /// The paper's I/O-vs-compute classification ratio: I/O time over
    /// compute time (>1 → I/O-intensive).
    pub fn io_ratio(&self) -> f64 {
        if self.t_comp == 0.0 {
            f64::INFINITY
        } else {
            (self.t_data_in + self.t_data_out) / self.t_comp
        }
    }

    /// All parameters non-negative and the cycle non-degenerate?
    pub fn is_valid(&self) -> bool {
        let vals = [
            self.t_init,
            self.t_ctx_switch,
            self.t_data_in,
            self.t_comp,
            self.t_data_out,
        ];
        vals.iter().all(|v| v.is_finite() && *v >= 0.0) && self.cycle() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_profiles_are_valid() {
        assert!(ExecutionProfile::vecadd_paper().is_valid());
        assert!(ExecutionProfile::ep_paper().is_valid());
    }

    #[test]
    fn vecadd_is_io_dominated_ep_is_compute_dominated() {
        assert!(ExecutionProfile::vecadd_paper().io_ratio() > 100.0);
        assert!(ExecutionProfile::ep_paper().io_ratio() < 1e-6);
    }

    #[test]
    fn io_extrema() {
        let p = ExecutionProfile::vecadd_paper();
        assert_eq!(p.max_io(), 135.874);
        assert_eq!(p.min_io(), 66.656);
        assert!((p.cycle() - 202.568).abs() < 1e-9);
    }

    #[test]
    fn degenerate_profile_rejected() {
        let p = ExecutionProfile {
            t_init: 0.0,
            t_ctx_switch: 0.0,
            t_data_in: 0.0,
            t_comp: 0.0,
            t_data_out: 0.0,
        };
        assert!(!p.is_valid());
    }
}

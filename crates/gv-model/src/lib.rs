//! # gv-model — the paper's analytical execution model
//!
//! ```
//! use gv_model::{ExecutionProfile, SpeedupModel};
//!
//! // The paper's Table II EP column, pushed through Eq. (5) at 8 tasks,
//! // reproduces Table III's printed 8.341 exactly:
//! let model = SpeedupModel::new(ExecutionProfile::ep_paper());
//! assert!((model.speedup(8) - 8.341).abs() < 0.001);
//! // …and Eq. (6) bounds it as the task count grows:
//! assert!(model.s_max() > model.speedup(64));
//! ```
//!
//! Table I parameters ([`params`]), Eqs. (1)–(6) ([`equations`]), and
//! parameter extraction from measurements ([`fit`]). Pure math — no
//! simulation dependencies — so the model can be checked against both the
//! paper's published numbers and the simulator's measurements.

#![warn(missing_docs)]

pub mod equations;
pub mod fit;
pub mod params;

pub use equations::{
    coalesce_saving, coalesced_overhead, optimal_chunks, pipelined_staging, request_overhead,
    swap_cost, SpeedupModel,
};
pub use fit::{fit_linear, no_vt_slope, profile_from_phases, r_squared, vt_slope};
pub use params::ExecutionProfile;

//! Property tests for the analytical model: Eqs. (1)–(6) identities and
//! monotonicity over the whole space of valid profiles.

use gv_model::{ExecutionProfile, SpeedupModel};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = ExecutionProfile> {
    (
        0.0f64..5000.0,    // t_init
        0.0f64..500.0,     // t_ctx_switch
        0.0f64..500.0,     // t_data_in
        0.001f64..10000.0, // t_comp (strictly positive keeps cycle valid)
        0.0f64..500.0,     // t_data_out
    )
        .prop_map(
            |(t_init, t_ctx_switch, t_data_in, t_comp, t_data_out)| ExecutionProfile {
                t_init,
                t_ctx_switch,
                t_data_in,
                t_comp,
                t_data_out,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Eq. (4) is exactly the piecewise combination of Eqs. (2) and (3).
    #[test]
    fn eq4_is_piecewise_eq2_eq3(p in profile_strategy(), n in 1u32..64) {
        let m = SpeedupModel::new(p);
        let expected = if p.t_data_in >= p.t_data_out {
            m.total_vt_in_bound(n)
        } else {
            m.total_vt_out_bound(n)
        };
        prop_assert!((m.total_vt(n) - expected).abs() < 1e-9);
    }

    /// Virtualized never loses: S(n) ≥ 1 for every valid profile and n.
    #[test]
    fn speedup_at_least_one(p in profile_strategy(), n in 1u32..64) {
        let m = SpeedupModel::new(p);
        prop_assert!(m.speedup(n) >= 1.0 - 1e-12,
            "S({n}) = {} < 1 for {p:?}", m.speedup(n));
    }

    /// Both totals are non-decreasing in n.
    #[test]
    fn totals_monotone_in_n(p in profile_strategy(), n in 1u32..63) {
        let m = SpeedupModel::new(p);
        prop_assert!(m.total_no_vt(n + 1) >= m.total_no_vt(n));
        prop_assert!(m.total_vt(n + 1) >= m.total_vt(n));
    }

    /// The speedup converges to S_max as n grows (relative gap shrinks).
    #[test]
    fn speedup_converges_to_smax(p in profile_strategy()) {
        let m = SpeedupModel::new(p);
        let smax = m.s_max();
        prop_assume!(smax.is_finite() && p.max_io() > 1e-6);
        let gap = |n: u32| (m.speedup(n) - smax).abs();
        prop_assert!(gap(100_000) <= gap(100) + 1e-9);
        prop_assert!(gap(1_000_000) / smax < 0.01);
    }

    /// Speedup increases with the context-switch cost — switching is pure
    /// overhead that only the baseline pays.
    #[test]
    fn speedup_increases_with_switch_cost(p in profile_strategy(), n in 2u32..32) {
        let m1 = SpeedupModel::new(p);
        let m2 = SpeedupModel::new(ExecutionProfile {
            t_ctx_switch: p.t_ctx_switch + 50.0,
            ..p
        });
        prop_assert!(m2.speedup(n) >= m1.speedup(n));
    }

    /// Deviation is zero exactly when the measurement equals the model.
    #[test]
    fn deviation_identity(p in profile_strategy(), n in 1u32..32) {
        let m = SpeedupModel::new(p);
        prop_assert!(m.deviation(n, m.speedup(n)) < 1e-12);
    }

    /// Scaling every time parameter by k leaves the speedup unchanged
    /// (the model is scale-free, which justifies scaled-down experiments).
    #[test]
    fn speedup_is_scale_free(p in profile_strategy(), n in 1u32..32, k in 0.01f64..100.0) {
        let m1 = SpeedupModel::new(p);
        let m2 = SpeedupModel::new(ExecutionProfile {
            t_init: p.t_init * k,
            t_ctx_switch: p.t_ctx_switch * k,
            t_data_in: p.t_data_in * k,
            t_comp: p.t_comp * k,
            t_data_out: p.t_data_out * k,
        });
        let (s1, s2) = (m1.speedup(n), m2.speedup(n));
        prop_assert!((s1 - s2).abs() / s1 < 1e-9, "{s1} vs {s2}");
    }
}

//! Deterministic fault injection for the virtualization stack.
//!
//! A [`FaultPlan`] is a seeded, serializable schedule of faults at named
//! injection points across the layers:
//!
//! * message-queue **drop / delay / duplication** at the nth lifetime send
//!   of the shared request queue or a rank's response queue
//!   ([`FaultSpec::MqDrop`] / [`FaultSpec::MqDelay`] /
//!   [`FaultSpec::MqDuplicate`]);
//! * **shared-memory corruption** at the nth timed write of a rank's
//!   virtual shared memory segment ([`FaultSpec::ShmCorrupt`]);
//! * **device-memory OOM** at the nth allocator call
//!   ([`FaultSpec::DeviceOom`]);
//! * **client abort** at any protocol stage ([`FaultSpec::ClientAbort`]).
//!
//! Because every fault is indexed by a deterministic event count — not
//! wall-clock or randomness at fire time — the same plan against the same
//! workload replays the same virtual-time trace byte for byte. Plans
//! round-trip through a line-based text format ([`FaultPlan::encode`] /
//! [`FaultPlan::decode`]) so a failing schedule can be checked in as a
//! regression fixture.
//!
//! [`FaultPlan::install`] arms everything on a [`GvmHandle`]'s registries
//! and the device allocator *before* the simulation runs; the registries
//! keep schedules by name, so arming works even though the GVM creates its
//! queues and segments later, at boot.

use gv_gpu::GpuDevice;

use crate::gvm::GvmHandle;
use crate::protocol::RequestKind;
use gv_sim::SimDuration;

/// Which message queue a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueSel {
    /// The shared request queue into the GVM.
    Request,
    /// The response queue back to this rank.
    Response(usize),
}

impl QueueSel {
    fn encode(self) -> String {
        match self {
            QueueSel::Request => "req".to_string(),
            QueueSel::Response(r) => format!("resp:{r}"),
        }
    }

    fn decode(s: &str) -> Option<QueueSel> {
        if s == "req" {
            return Some(QueueSel::Request);
        }
        let r = s.strip_prefix("resp:")?.parse().ok()?;
        Some(QueueSel::Response(r))
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Silently drop the `nth` lifetime send on `queue`.
    MqDrop {
        /// Target queue.
        queue: QueueSel,
        /// 0-based send index.
        nth: u64,
    },
    /// Charge the sender an extra `delay` at the `nth` lifetime send.
    MqDelay {
        /// Target queue.
        queue: QueueSel,
        /// 0-based send index.
        nth: u64,
        /// Extra sender-side latency.
        delay: SimDuration,
    },
    /// Deliver the `nth` lifetime send twice.
    MqDuplicate {
        /// Target queue.
        queue: QueueSel,
        /// 0-based send index.
        nth: u64,
    },
    /// XOR-corrupt the bytes stored by the `nth` timed write to `rank`'s
    /// virtual shared memory segment.
    ShmCorrupt {
        /// Target rank's segment.
        rank: usize,
        /// 0-based timed-write index.
        nth_write: u64,
    },
    /// Fail the device allocator's `nth` lifetime `alloc` call with
    /// out-of-memory.
    DeviceOom {
        /// 1-based allocator call index (see [`GpuDevice::arm_oom`]).
        nth_alloc: u64,
    },
    /// The client at `rank` abandons the protocol when it reaches `stage`.
    ClientAbort {
        /// Aborting rank.
        rank: usize,
        /// Stage at which it walks away.
        stage: RequestKind,
    },
}

/// A plan failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed recorded for provenance (and used by [`FaultPlan::random`]).
    pub seed: u64,
    /// The scheduled faults, in arming order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan stamped with `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Add one fault (builder style).
    pub fn push(mut self, fault: FaultSpec) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Generate `count` pseudo-random faults over `ranks` ranks from
    /// `seed` (own SplitMix64 — no external RNG, so identical across
    /// platforms and runs).
    pub fn random(seed: u64, ranks: usize, count: usize) -> FaultPlan {
        assert!(ranks >= 1);
        let mut state = seed;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new(seed);
        for _ in 0..count {
            let rank = (next() % ranks as u64) as usize;
            let queue = if next() % 2 == 0 {
                QueueSel::Request
            } else {
                QueueSel::Response(rank)
            };
            let nth = next() % 16;
            let fault = match next() % 5 {
                0 => FaultSpec::MqDrop { queue, nth },
                1 => FaultSpec::MqDelay {
                    queue,
                    nth,
                    delay: SimDuration::from_micros(1 + next() % 500),
                },
                2 => FaultSpec::MqDuplicate { queue, nth },
                3 => FaultSpec::ShmCorrupt {
                    rank,
                    nth_write: next() % 4,
                },
                _ => FaultSpec::ClientAbort {
                    rank,
                    stage: RequestKind::ALL[(next() % 6) as usize],
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    /// The stage at which `rank` is scripted to abort, if any (first
    /// matching [`FaultSpec::ClientAbort`] wins).
    pub fn abort_stage(&self, rank: usize) -> Option<RequestKind> {
        self.faults.iter().find_map(|f| match f {
            FaultSpec::ClientAbort { rank: r, stage } if *r == rank => Some(*stage),
            _ => None,
        })
    }

    /// Arm every fault on `h`'s IPC registries and `device`'s allocator.
    /// Call before `sim.run()`; client aborts are not armed here — clients
    /// query [`abort_stage`](Self::abort_stage) themselves.
    pub fn install(&self, h: &GvmHandle, device: &GpuDevice) {
        for fault in &self.faults {
            match *fault {
                FaultSpec::MqDrop { queue, nth } => match queue {
                    QueueSel::Request => {
                        h.req_mq.arm_drop(&h.endpoints.request_queue(), nth);
                    }
                    QueueSel::Response(r) => {
                        h.resp_mq.arm_drop(&h.endpoints.response_queue(r), nth);
                    }
                },
                FaultSpec::MqDelay { queue, nth, delay } => match queue {
                    QueueSel::Request => {
                        h.req_mq.arm_delay(&h.endpoints.request_queue(), nth, delay);
                    }
                    QueueSel::Response(r) => {
                        h.resp_mq
                            .arm_delay(&h.endpoints.response_queue(r), nth, delay);
                    }
                },
                FaultSpec::MqDuplicate { queue, nth } => match queue {
                    QueueSel::Request => {
                        h.req_mq.arm_duplicate(&h.endpoints.request_queue(), nth);
                    }
                    QueueSel::Response(r) => {
                        h.resp_mq.arm_duplicate(&h.endpoints.response_queue(r), nth);
                    }
                },
                FaultSpec::ShmCorrupt { rank, nth_write } => {
                    h.shm.arm_corrupt(&h.endpoints.shm(rank), nth_write);
                }
                FaultSpec::DeviceOom { nth_alloc } => {
                    device.arm_oom(nth_alloc);
                }
                FaultSpec::ClientAbort { .. } => {}
            }
        }
    }

    /// Serialize to the line-based text format (delay values in integer
    /// nanoseconds, so `decode(encode(p)) == p` exactly).
    pub fn encode(&self) -> String {
        let mut out = format!("faultplan v1 seed={}\n", self.seed);
        for fault in &self.faults {
            let line = match *fault {
                FaultSpec::MqDrop { queue, nth } => format!("mq-drop {} {nth}", queue.encode()),
                FaultSpec::MqDelay { queue, nth, delay } => {
                    format!("mq-delay {} {nth} {}", queue.encode(), delay.as_nanos())
                }
                FaultSpec::MqDuplicate { queue, nth } => {
                    format!("mq-dup {} {nth}", queue.encode())
                }
                FaultSpec::ShmCorrupt { rank, nth_write } => {
                    format!("shm-corrupt {rank} {nth_write}")
                }
                FaultSpec::DeviceOom { nth_alloc } => format!("oom {nth_alloc}"),
                FaultSpec::ClientAbort { rank, stage } => {
                    format!("abort {rank} {}", stage.label())
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse the text format produced by [`encode`](Self::encode). Blank
    /// lines and `#` comments are ignored.
    pub fn decode(text: &str) -> Result<FaultPlan, PlanParseError> {
        let err = |line: usize, message: &str| PlanParseError {
            line,
            message: message.to_string(),
        };
        let mut plan = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let plan = match plan.as_mut() {
                None => {
                    if fields.len() != 3 || fields[0] != "faultplan" || fields[1] != "v1" {
                        return Err(err(lineno, "expected header `faultplan v1 seed=<n>`"));
                    }
                    let seed = fields[2]
                        .strip_prefix("seed=")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "bad seed"))?;
                    plan = Some(FaultPlan::new(seed));
                    continue;
                }
                Some(p) => p,
            };
            let num = |idx: usize| -> Result<u64, PlanParseError> {
                fields
                    .get(idx)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad numeric field"))
            };
            let queue = |idx: usize| -> Result<QueueSel, PlanParseError> {
                fields
                    .get(idx)
                    .and_then(|s| QueueSel::decode(s))
                    .ok_or_else(|| err(lineno, "bad queue selector"))
            };
            let nargs = fields.len() - 1;
            let fault = match (fields[0], nargs) {
                ("mq-drop", 2) => FaultSpec::MqDrop {
                    queue: queue(1)?,
                    nth: num(2)?,
                },
                ("mq-delay", 3) => FaultSpec::MqDelay {
                    queue: queue(1)?,
                    nth: num(2)?,
                    delay: SimDuration::from_nanos(num(3)?),
                },
                ("mq-dup", 2) => FaultSpec::MqDuplicate {
                    queue: queue(1)?,
                    nth: num(2)?,
                },
                ("shm-corrupt", 2) => FaultSpec::ShmCorrupt {
                    rank: num(1)? as usize,
                    nth_write: num(2)?,
                },
                ("oom", 1) => FaultSpec::DeviceOom { nth_alloc: num(1)? },
                ("abort", 2) => FaultSpec::ClientAbort {
                    rank: num(1)? as usize,
                    stage: RequestKind::from_label(fields[2])
                        .ok_or_else(|| err(lineno, "unknown protocol stage"))?,
                },
                _ => return Err(err(lineno, "unknown fault directive")),
            };
            plan.faults.push(fault);
        }
        plan.ok_or_else(|| err(0, "empty plan (missing header)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::new(42)
            .push(FaultSpec::MqDrop {
                queue: QueueSel::Request,
                nth: 3,
            })
            .push(FaultSpec::MqDelay {
                queue: QueueSel::Response(2),
                nth: 1,
                delay: SimDuration::from_micros(250),
            })
            .push(FaultSpec::MqDuplicate {
                queue: QueueSel::Response(0),
                nth: 0,
            })
            .push(FaultSpec::ShmCorrupt {
                rank: 3,
                nth_write: 1,
            })
            .push(FaultSpec::DeviceOom { nth_alloc: 4 })
            .push(FaultSpec::ClientAbort {
                rank: 2,
                stage: RequestKind::Stp,
            })
    }

    #[test]
    fn encode_decode_roundtrip() {
        let plan = sample();
        let text = plan.encode();
        assert_eq!(FaultPlan::decode(&text).unwrap(), plan);
    }

    #[test]
    fn decode_tolerates_comments_and_blanks() {
        let text = "# fixture\nfaultplan v1 seed=7\n\n# one drop\nmq-drop req 0\n";
        let plan = FaultPlan::decode(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FaultPlan::decode("").is_err());
        assert!(FaultPlan::decode("faultplan v2 seed=1\n").is_err());
        assert!(FaultPlan::decode("faultplan v1 seed=1\nmq-drop req\n").is_err());
        assert!(FaultPlan::decode("faultplan v1 seed=1\nabort 0 NOP\n").is_err());
        let e = FaultPlan::decode("faultplan v1 seed=1\nexplode 3\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(99, 4, 12);
        let b = FaultPlan::random(99, 4, 12);
        let c = FaultPlan::random(100, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.faults.len(), 12);
        // And the text format round-trips arbitrary generated plans too.
        assert_eq!(FaultPlan::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn abort_stage_finds_first_match() {
        let plan = sample();
        assert_eq!(plan.abort_stage(2), Some(RequestKind::Stp));
        assert_eq!(plan.abort_stage(0), None);
    }
}

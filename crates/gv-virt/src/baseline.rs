//! The comparison baseline: conventional direct GPU sharing (paper §IV.B.1).
//!
//! Every SPMD process initializes the GPU itself — creating its *own*
//! context (serialized through the driver) — then runs its task with
//! synchronous pageable copies and kernel launches. The device serializes
//! work across the N contexts, charging each task's measured context-switch
//! cost (paper Fig. 4 / Eq. 1).

use gv_cuda::{CudaDevice, HostBuffer};
use gv_kernels::GpuTask;
use gv_sim::Ctx;

use crate::protocol::TaskRun;

/// Run `task` the conventional way from the calling process. Returns the
/// phase timestamps and, for functional tasks, the output bytes.
pub fn run_direct(
    ctx: &mut Ctx,
    cuda: &CudaDevice,
    task: &GpuTask,
    rank: usize,
) -> (TaskRun, Option<Vec<u8>>) {
    let start = ctx.now();

    // --- Initialization: context creation + device allocation (Fig. 3). --
    let cc = cuda.create_context_with_switch_cost(
        ctx,
        &format!("{}-p{rank}", task.name),
        task.ctx_switch_cost,
    );
    let stream = cc.stream_create();
    let dev = cc
        .malloc(task.device_bytes.max(1))
        .expect("device allocation");
    let init_done = ctx.now();

    let functional = task.is_functional();
    let hin = match &task.input {
        Some(data) => HostBuffer::from_bytes(data.as_ref().clone(), false),
        None => HostBuffer::opaque(task.bytes_in.max(1), false),
    };
    let hout = if functional {
        HostBuffer::zeroed(task.bytes_out.max(1), false)
    } else {
        HostBuffer::opaque(task.bytes_out.max(1), false)
    };
    let kernels = task.bind_kernels(dev);

    let mut data_in_done = init_done;
    let mut comp_done = init_done;
    let mut data_out_done = init_done;
    for iter in 0..task.iterations {
        // Send data: synchronous pageable H2D.
        if task.bytes_in > 0 {
            cc.memcpy_h2d(ctx, stream, &hin, dev, task.bytes_in)
                .expect("baseline H2D");
        }
        if iter == 0 {
            data_in_done = ctx.now();
        }
        // Compute: asynchronous launches + explicit sync.
        for k in &kernels {
            cc.launch(ctx, stream, k.clone()).expect("baseline launch");
        }
        cc.stream_synchronize(ctx, stream);
        comp_done = ctx.now();
        // Retrieve data: synchronous pageable D2H.
        if task.bytes_out > 0 {
            cc.memcpy_d2h(ctx, stream, dev.add(task.d2h_offset), &hout, task.bytes_out)
                .expect("baseline D2H");
        }
        data_out_done = ctx.now();
    }

    cc.free(dev).expect("free device allocation");
    let end = ctx.now();
    let output = if functional { hout.to_bytes() } else { None };
    (
        TaskRun {
            rank,
            start,
            init_done,
            data_in_done,
            comp_done,
            data_out_done,
            end,
        },
        output,
    )
}

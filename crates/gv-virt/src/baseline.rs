//! The comparison baseline: conventional direct GPU sharing (paper §IV.B.1).
//!
//! Every SPMD process initializes the GPU itself — creating its *own*
//! context (serialized through the driver) — then runs its task with
//! synchronous pageable copies and kernel launches. The device serializes
//! work across the N contexts, charging each task's measured context-switch
//! cost (paper Fig. 4 / Eq. 1).

use gv_cuda::{CudaDevice, HostBuffer};
use gv_kernels::GpuTask;
use gv_sim::Ctx;

use crate::client::TaskError;
use crate::protocol::{RequestKind, TaskRun};

/// Run `task` the conventional way from the calling process. Returns the
/// phase timestamps and, for functional tasks, the output bytes.
pub fn run_direct(
    ctx: &mut Ctx,
    cuda: &CudaDevice,
    task: &GpuTask,
    rank: usize,
) -> (TaskRun, Option<Vec<u8>>) {
    run_direct_abortable(ctx, cuda, task, rank, None).expect("no abort scripted")
}

/// [`run_direct`] with an optional scripted crash point, expressed in the
/// same protocol-stage vocabulary the GVM clients use so the two
/// architectures' failure behavior can be compared like-for-like:
///
/// | stage | dies before |
/// |-------|-------------|
/// | `Req` | context creation / device allocation |
/// | `Snd` | the H2D copy |
/// | `Str` | kernel launch |
/// | `Stp` | stream synchronization |
/// | `Rcv` | the D2H copy |
/// | `Rls` | freeing device memory |
///
/// Unlike the GVM — where eviction reclaims an aborted rank's resources —
/// a direct-sharing process that dies after allocating **leaks its device
/// memory** (nobody owns it), which the failure-injection tier asserts via
/// allocator accounting.
pub fn run_direct_abortable(
    ctx: &mut Ctx,
    cuda: &CudaDevice,
    task: &GpuTask,
    rank: usize,
    abort_at: Option<RequestKind>,
) -> Result<(TaskRun, Option<Vec<u8>>), TaskError> {
    let abort = |stage: RequestKind| -> Result<(), TaskError> {
        if abort_at == Some(stage) {
            Err(TaskError::Aborted { stage })
        } else {
            Ok(())
        }
    };
    abort(RequestKind::Req)?;
    let start = ctx.now();

    // --- Initialization: context creation + device allocation (Fig. 3). --
    let cc = cuda.create_context_with_switch_cost(
        ctx,
        &format!("{}-p{rank}", task.name),
        task.ctx_switch_cost,
    );
    let stream = cc.stream_create();
    let dev = cc
        .malloc(task.device_bytes.max(1))
        .expect("device allocation");
    let init_done = ctx.now();

    let functional = task.is_functional();
    let hin = match &task.input {
        Some(data) => HostBuffer::from_bytes(data.as_ref().clone(), false),
        None => HostBuffer::opaque(task.bytes_in.max(1), false),
    };
    let hout = if functional {
        HostBuffer::zeroed(task.bytes_out.max(1), false)
    } else {
        HostBuffer::opaque(task.bytes_out.max(1), false)
    };
    let kernels = task.bind_kernels(dev);

    let mut data_in_done = init_done;
    let mut comp_done = init_done;
    let mut data_out_done = init_done;
    for iter in 0..task.iterations {
        // Send data: synchronous pageable H2D.
        abort(RequestKind::Snd)?;
        if task.bytes_in > 0 {
            cc.memcpy_h2d(ctx, stream, &hin, dev, task.bytes_in)
                .expect("baseline H2D");
        }
        if iter == 0 {
            data_in_done = ctx.now();
        }
        // Compute: asynchronous launches + explicit sync.
        abort(RequestKind::Str)?;
        for k in &kernels {
            cc.launch(ctx, stream, k.clone()).expect("baseline launch");
        }
        abort(RequestKind::Stp)?;
        cc.stream_synchronize(ctx, stream);
        comp_done = ctx.now();
        // Retrieve data: synchronous pageable D2H.
        abort(RequestKind::Rcv)?;
        if task.bytes_out > 0 {
            cc.memcpy_d2h(ctx, stream, dev.add(task.d2h_offset), &hout, task.bytes_out)
                .expect("baseline D2H");
        }
        data_out_done = ctx.now();
    }

    // A process dying here orphans its allocation: there is no manager to
    // reclaim it.
    abort(RequestKind::Rls)?;
    cc.free(dev).expect("free device allocation");
    let end = ctx.now();
    let output = if functional { hout.to_bytes() } else { None };
    Ok((
        TaskRun {
            rank,
            start,
            init_done,
            data_in_done,
            comp_done,
            data_out_done,
            end,
        },
        output,
    ))
}

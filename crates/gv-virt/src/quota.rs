//! Per-VGPU / per-tenant device-memory quotas.
//!
//! A [`MemQuota`] caps how many device bytes one VGPU session may have
//! charged at a time, either absolutely or as a fraction of the device it
//! lands on. It travels on a [`VgpuRequest`](crate::cluster::VgpuRequest)
//! (so the placement planner can refuse infeasible placements up front)
//! and on [`GvmConfig`](crate::gvm::GvmConfig) (so the GVM enforces it at
//! `REQ`/`SND` admission — reject with a `NAK`, never silently exceed).
//!
//! Quotas are what make oversubscription safe: with per-session caps in
//! place, the GVM can admit sessions whose *summed* demand exceeds VRAM
//! and demand-swap idle working sets to pinned host staging, because no
//! single session can run the device out from under the others.

/// A device-memory cap for one VGPU session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemQuota {
    /// No cap: the session may charge up to the whole device.
    #[default]
    Unlimited,
    /// Absolute cap in bytes.
    Bytes(u64),
    /// Cap as a percentage of the target device's capacity, 1–100.
    /// `Percent(25)` on a 6 GiB device resolves to 1.5 GiB.
    Percent(u8),
}

impl MemQuota {
    /// Resolve the cap against a device of `device_bytes` capacity.
    /// `None` means unlimited; `Some(cap)` is the byte limit to enforce.
    pub fn resolve(self, device_bytes: u64) -> Option<u64> {
        match self {
            MemQuota::Unlimited => None,
            MemQuota::Bytes(b) => Some(b),
            MemQuota::Percent(p) => {
                Some((u128::from(device_bytes) * u128::from(p.min(100)) / 100) as u64)
            }
        }
    }

    /// True when this quota imposes no cap on any device.
    pub fn is_unlimited(self) -> bool {
        matches!(self, MemQuota::Unlimited) || matches!(self, MemQuota::Percent(p) if p >= 100)
    }

    /// Whether `demand` bytes fit under this quota on a device of
    /// `device_bytes` capacity.
    pub fn admits(self, demand: u64, device_bytes: u64) -> bool {
        match self.resolve(device_bytes) {
            None => true,
            Some(cap) => demand <= cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_per_variant() {
        assert_eq!(MemQuota::Unlimited.resolve(1 << 30), None);
        assert_eq!(MemQuota::Bytes(4096).resolve(1 << 30), Some(4096));
        assert_eq!(MemQuota::Percent(25).resolve(6 << 30), Some((6 << 30) / 4));
        assert_eq!(MemQuota::Percent(200).resolve(100), Some(100), "clamped");
    }

    #[test]
    fn admits_compares_against_the_resolved_cap() {
        assert!(MemQuota::Unlimited.admits(u64::MAX, 1));
        assert!(MemQuota::Bytes(4096).admits(4096, 1 << 30));
        assert!(!MemQuota::Bytes(4096).admits(4097, 1 << 30));
        assert!(MemQuota::Percent(50).admits(512, 1024));
        assert!(!MemQuota::Percent(50).admits(513, 1024));
    }

    #[test]
    fn unlimited_detection() {
        assert!(MemQuota::Unlimited.is_unlimited());
        assert!(MemQuota::Percent(100).is_unlimited());
        assert!(!MemQuota::Percent(99).is_unlimited());
        assert!(!MemQuota::Bytes(u64::MAX).is_unlimited());
    }
}

//! Cluster-scale placement front-end: N per-device GVMs behind pluggable
//! placement policies.
//!
//! The paper virtualizes *one* GPU behind *one* GVM. At cluster scale a
//! resource manager faces the step before that: which device should host
//! which VGPU session? This module adds that front-end without touching
//! the client protocol — it owns one [`Gvm`] per (device, admission wave),
//! plans placements with a pluggable [`PlacePolicy`], and wires clients to
//! their assigned manager:
//!
//! * [`PlacePolicy::BinPack`] — fill the hottest device that still fits
//!   (consolidation: frees whole devices for large arrivals).
//! * [`PlacePolicy::Spread`] — least-loaded device first (load balance:
//!   minimizes per-device contention).
//! * [`PlacePolicy::Gang`] — SPMD gangs land *atomically* on one device or
//!   wait for the next admission wave, all-or-nothing (modeled on
//!   Volcano's gang plugin); gangs are admitted before singletons so
//!   stragglers cannot fragment the cluster under them.
//! * [`PlacePolicy::Drf`] — dominant-resource fairness across tenants:
//!   each admission goes to the tenant whose dominant share (device
//!   memory vs kernel slots) is currently smallest.
//!
//! Placement is *plan-then-execute*: [`plan`] is a pure function from
//! requests + device capacities to a [`ClusterPlan`] (unit-testable,
//! property-testable, deterministic), and [`Cluster::install`] realizes a
//! plan inside a simulation. Sessions that exceed a wave's remaining
//! capacity are deferred to the next wave; wave `w+1`'s managers boot only
//! after every wave-`w` manager drains, so capacity bounds hold at every
//! instant. The front-end emits `ClusterDevice`/`ClusterPlace`/
//! `ClusterEvict` analysis records so `gv-analyze`'s co-residency checker
//! can audit single residency, gang integrity, and capacity from the trace
//! alone.
//!
//! A one-device cluster reduces *structurally* to the direct
//! single-GVM path (same spawn order, same client sequence, no extra
//! simulated-time cost), so its timings are bit-identical to
//! `Gvm::install` — `tests/multi_gpu.rs` locks that differential down for
//! every policy.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use gv_cuda::CudaDevice;
use gv_gpu::DeviceConfig;
use gv_ipc::Node;
use gv_kernels::GpuTask;
use gv_mem::MemConfig;
use gv_sim::{AnalysisRecord, Ctx, Gate, SimDuration, Simulation};
use parking_lot::Mutex;

use crate::client::VgpuClient;
use crate::gvm::{Gvm, GvmConfig, GvmHandle, GvmStats};
use crate::protocol::TaskRun;
use crate::quota::MemQuota;
use crate::sched::SchedPolicy;

// ---------------------------------------------------------------------------
// Requests and capacities
// ---------------------------------------------------------------------------

/// One VGPU session request submitted to the cluster front-end.
#[derive(Debug, Clone)]
pub struct VgpuRequest {
    /// Unique session id (also the trace's `vgpu` id). Arrival order is the
    /// order of the request slice handed to [`plan`] / [`Cluster::install`].
    pub id: u64,
    /// Owning tenant (DRF fairness domain).
    pub tenant: u64,
    /// `Some(g)`: member of SPMD gang `g` — all members of a gang must be
    /// co-placed on one device in one wave, or none of them are.
    pub gang: Option<u64>,
    /// Device-memory quota for the session. The planner refuses devices
    /// whose resolved cap cannot admit the session's demand (and errors
    /// with [`PlanError::OverQuota`] when *no* device can), and the
    /// session's GVM enforces the quota again at `REQ`/`SND` admission.
    pub quota: MemQuota,
    /// The GPU work the session will run through its GVM.
    pub task: GpuTask,
}

/// A device's capacity vector as seen by the placement planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCap {
    /// Global device memory, bytes.
    pub mem_bytes: u64,
    /// Concurrent-kernel window — the number of VGPU sessions a device's
    /// GVM serves per wave without queueing kernels behind the window.
    pub kernel_slots: u32,
}

impl DeviceCap {
    /// Capacity vector of a simulated device.
    pub fn from_config(config: &DeviceConfig) -> Self {
        DeviceCap {
            mem_bytes: config.global_mem_bytes,
            kernel_slots: config.max_concurrent_kernels,
        }
    }
}

/// A device's load during planning: capacity plus what the current wave has
/// already admitted onto it.
#[derive(Debug, Clone, Copy)]
pub struct DeviceLoad {
    /// This device's index in the capacity slice (quota feasibility is
    /// per-device: a `Percent` quota resolves differently on devices of
    /// different sizes).
    pub index: usize,
    /// Static capacity.
    pub cap: DeviceCap,
    /// Device memory admitted this wave.
    pub mem_used: u64,
    /// Sessions admitted this wave.
    pub slots_used: u32,
}

impl DeviceLoad {
    fn empty(index: usize, cap: DeviceCap) -> Self {
        DeviceLoad {
            index,
            cap,
            mem_used: 0,
            slots_used: 0,
        }
    }

    /// Can this device still take `group` in the current wave?
    pub fn fits(&self, group: &PendingGroup) -> bool {
        group.quota_admits(self.index)
            && self.mem_used + group.mem_bytes <= self.cap.mem_bytes
            && self.slots_used + group.sessions <= self.cap.kernel_slots
    }

    /// Lexicographic load key (memory first, then sessions) used for
    /// hottest/least-loaded comparisons.
    pub fn key(&self) -> (u64, u32) {
        (self.mem_used, self.slots_used)
    }
}

/// A placement unit as shown to a [`PlacementPolicy`]: a whole gang, or a
/// single non-gang session.
#[derive(Debug, Clone, Copy)]
pub struct PendingGroup {
    /// Arrival position of the group's first member (FIFO tie-break).
    pub arrival: usize,
    /// Owning tenant.
    pub tenant: u64,
    /// Gang id, `None` for singletons.
    pub gang: Option<u64>,
    /// Total device-memory demand of all members.
    pub mem_bytes: u64,
    /// Member count (kernel-slot demand).
    pub sessions: u32,
    /// Bitmask over device indices where every member's [`MemQuota`]
    /// admits that member's demand (bit `d` set = device `d` is quota-
    /// feasible; devices past 63 share bit 63, conservatively requiring
    /// them all to agree).
    pub quota_fit: u64,
}

impl PendingGroup {
    /// Whether every member's quota admits its demand on device `device`.
    pub fn quota_admits(&self, device: usize) -> bool {
        (self.quota_fit >> device.min(63)) & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// Which placement policy the planner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacePolicy {
    /// Fill the hottest fitting device first (consolidation).
    #[default]
    BinPack,
    /// Least-loaded fitting device first (load balancing).
    Spread,
    /// Gangs first (largest first), each on the least-loaded fitting
    /// device, atomically; singletons fill in after.
    Gang,
    /// Dominant-resource fairness across tenants over the
    /// (memory, kernel-slot) demand vector.
    Drf,
}

impl PlacePolicy {
    /// Stable label (CSV column, CLI argument).
    pub fn name(&self) -> &'static str {
        match self {
            PlacePolicy::BinPack => "binpack",
            PlacePolicy::Spread => "spread",
            PlacePolicy::Gang => "gang",
            PlacePolicy::Drf => "drf",
        }
    }

    /// Parse a [`name`](Self::name) label.
    pub fn parse(s: &str) -> Option<PlacePolicy> {
        match s {
            "binpack" => Some(PlacePolicy::BinPack),
            "spread" => Some(PlacePolicy::Spread),
            "gang" => Some(PlacePolicy::Gang),
            "drf" => Some(PlacePolicy::Drf),
            _ => None,
        }
    }

    /// Every policy, in sweep order.
    pub fn all() -> [PlacePolicy; 4] {
        [
            PlacePolicy::BinPack,
            PlacePolicy::Spread,
            PlacePolicy::Gang,
            PlacePolicy::Drf,
        ]
    }

    /// Build the per-wave admission strategy (fresh state each wave).
    fn build(&self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacePolicy::BinPack => Box::new(BinPack),
            PlacePolicy::Spread => Box::new(Spread),
            PlacePolicy::Gang => Box::new(GangFirst),
            PlacePolicy::Drf => Box::new(Drf::default()),
        }
    }
}

impl std::fmt::Display for PlacePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One admission decision: place `pending[group]` on `device`.
#[derive(Debug, Clone, Copy)]
pub struct Admit {
    /// Index into the pending-group slice passed to the policy.
    pub group: usize,
    /// Target device index.
    pub device: usize,
}

/// A per-wave admission strategy. The planner calls [`admit`] repeatedly;
/// each returned decision must fit (the planner asserts it), the chosen
/// group is removed from `pending`, and the device load is charged. `None`
/// closes the wave — everything still pending is deferred.
///
/// [`admit`]: PlacementPolicy::admit
pub trait PlacementPolicy {
    /// Choose the next admission, or `None` to close the wave.
    fn admit(&mut self, pending: &[PendingGroup], devices: &[DeviceLoad]) -> Option<Admit>;
}

/// Least-loaded device that fits `group` (ties to the lowest index).
fn least_loaded_fit(devices: &[DeviceLoad], group: &PendingGroup) -> Option<usize> {
    devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.fits(group))
        .min_by_key(|(i, d)| (d.key(), *i))
        .map(|(i, _)| i)
}

/// Hottest device that fits `group` (ties to the lowest index).
fn hottest_fit(devices: &[DeviceLoad], group: &PendingGroup) -> Option<usize> {
    devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.fits(group))
        .max_by(|(ia, a), (ib, b)| a.key().cmp(&b.key()).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

struct BinPack;

impl PlacementPolicy for BinPack {
    fn admit(&mut self, pending: &[PendingGroup], devices: &[DeviceLoad]) -> Option<Admit> {
        pending
            .iter()
            .enumerate()
            .find_map(|(i, g)| hottest_fit(devices, g).map(|device| Admit { group: i, device }))
    }
}

struct Spread;

impl PlacementPolicy for Spread {
    fn admit(&mut self, pending: &[PendingGroup], devices: &[DeviceLoad]) -> Option<Admit> {
        pending.iter().enumerate().find_map(|(i, g)| {
            least_loaded_fit(devices, g).map(|device| Admit { group: i, device })
        })
    }
}

struct GangFirst;

impl PlacementPolicy for GangFirst {
    fn admit(&mut self, pending: &[PendingGroup], devices: &[DeviceLoad]) -> Option<Admit> {
        let mut order: Vec<usize> = (0..pending.len()).collect();
        // Gangs before singletons, wide gangs before narrow ones, FIFO
        // within a class — big atomic groups get first pick of space.
        order.sort_by_key(|&i| {
            let g = &pending[i];
            (g.gang.is_none(), std::cmp::Reverse(g.sessions), g.arrival)
        });
        order.into_iter().find_map(|i| {
            least_loaded_fit(devices, &pending[i]).map(|device| Admit { group: i, device })
        })
    }
}

#[derive(Default)]
struct Drf {
    /// tenant → (memory, slots) admitted this wave.
    shares: HashMap<u64, (u64, u32)>,
    /// Tenants with no fitting group left this wave.
    blocked: HashSet<u64>,
}

impl Drf {
    fn dominant_share(&self, tenant: u64, devices: &[DeviceLoad]) -> f64 {
        let (mem_total, slots_total) = devices.iter().fold((0u64, 0u32), |(m, s), d| {
            (m + d.cap.mem_bytes, s + d.cap.kernel_slots)
        });
        let (mem, slots) = self.shares.get(&tenant).copied().unwrap_or((0, 0));
        let ms = if mem_total == 0 {
            0.0
        } else {
            mem as f64 / mem_total as f64
        };
        let ss = if slots_total == 0 {
            0.0
        } else {
            slots as f64 / slots_total as f64
        };
        ms.max(ss)
    }
}

impl PlacementPolicy for Drf {
    fn admit(&mut self, pending: &[PendingGroup], devices: &[DeviceLoad]) -> Option<Admit> {
        loop {
            // Tenants still competing: at least one pending group, not
            // yet blocked by a failed fit this wave.
            let tenant = pending
                .iter()
                .filter(|g| !self.blocked.contains(&g.tenant))
                .map(|g| g.tenant)
                .min_by(|a, b| {
                    let (sa, sb) = (
                        self.dominant_share(*a, devices),
                        self.dominant_share(*b, devices),
                    );
                    sa.partial_cmp(&sb).unwrap().then(a.cmp(b))
                })?;
            // FIFO within the picked tenant (pending is in arrival order).
            let (group, g) = pending
                .iter()
                .enumerate()
                .find(|(_, g)| g.tenant == tenant)
                .expect("picked tenant has a pending group");
            match least_loaded_fit(devices, g) {
                Some(device) => {
                    let e = self.shares.entry(tenant).or_insert((0, 0));
                    e.0 += g.mem_bytes;
                    e.1 += g.sessions;
                    return Some(Admit { group, device });
                }
                None => {
                    self.blocked.insert(tenant);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Where one request landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The request's [`VgpuRequest::id`].
    pub request: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Gang membership.
    pub gang: Option<u64>,
    /// Target device index.
    pub device: usize,
    /// Admission wave (0-based).
    pub wave: u32,
    /// SPMD rank within the (device, wave) GVM — request ids ascending.
    pub slot: usize,
    /// Device-memory demand charged for this session.
    pub mem_bytes: u64,
}

/// One admission decision in the order the policy made it — the audit
/// trail property tests replay to check policy invariants (e.g. DRF's
/// minimal-dominant-share rule) against an independent oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// Wave the decision belongs to.
    pub wave: u32,
    /// Target device.
    pub device: usize,
    /// Tenant whose group was admitted.
    pub tenant: u64,
    /// Gang id for gang groups.
    pub gang: Option<u64>,
    /// Member request ids, ascending.
    pub requests: Vec<u64>,
}

/// The pure output of [`plan`]: every request assigned, plus the decision
/// trail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterPlan {
    /// One entry per request, in arrival order.
    pub assignments: Vec<Assignment>,
    /// Number of admission waves.
    pub waves: u32,
    /// Placement groups (gangs count once).
    pub groups: u64,
    /// Deferral events: groups still pending at a wave close, summed over
    /// waves (a group deferred twice counts twice).
    pub deferred_groups: u64,
    /// Every admission in decision order.
    pub admissions: Vec<Admission>,
}

impl ClusterPlan {
    /// Assignment for a request id.
    pub fn assignment(&self, id: u64) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.request == id)
    }

    /// Sessions per device over the whole run.
    pub fn sessions_per_device(&self, ndev: usize) -> Vec<u64> {
        let mut v = vec![0u64; ndev];
        for a in &self.assignments {
            v[a.device] += 1;
        }
        v
    }
}

/// Why a request set cannot be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The cluster has no devices.
    NoDevices,
    /// Two requests share an id.
    DuplicateRequestId(u64),
    /// A gang's members name different tenants.
    MixedTenantGang {
        /// The offending gang id.
        gang: u64,
    },
    /// A group exceeds every device's *empty* capacity — no wave can ever
    /// admit it.
    Infeasible {
        /// The group's memory demand.
        mem_bytes: u64,
        /// The group's session count.
        sessions: u32,
    },
    /// A request's own quota cannot admit its demand on *any* device — the
    /// session would be `NAK`ed at admission wherever it lands, so the
    /// planner refuses it up front.
    OverQuota {
        /// The offending request id.
        request: u64,
        /// The request's memory demand.
        mem_bytes: u64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoDevices => write!(f, "cluster has no devices"),
            PlanError::DuplicateRequestId(id) => {
                write!(f, "duplicate VGPU request id {id}")
            }
            PlanError::MixedTenantGang { gang } => {
                write!(f, "gang {gang} spans multiple tenants")
            }
            PlanError::Infeasible {
                mem_bytes,
                sessions,
            } => write!(
                f,
                "group of {sessions} session(s) demanding {mem_bytes} bytes \
                 fits no empty device"
            ),
            PlanError::OverQuota { request, mem_bytes } => write!(
                f,
                "request {request} demands {mem_bytes} bytes, over its own \
                 quota on every device"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plan placements for `requests` over devices with capacities `caps`.
///
/// Pure and deterministic: the same inputs always produce the same plan.
/// Groups (gangs, or singleton sessions) are admitted wave by wave; a
/// wave closes when the policy finds nothing more that fits, and the
/// remainder is deferred to the next wave against empty devices.
pub fn plan(
    policy: PlacePolicy,
    requests: &[VgpuRequest],
    caps: &[DeviceCap],
) -> Result<ClusterPlan, PlanError> {
    if caps.is_empty() {
        return Err(PlanError::NoDevices);
    }
    let mut seen = HashSet::new();
    for r in requests {
        if !seen.insert(r.id) {
            return Err(PlanError::DuplicateRequestId(r.id));
        }
    }

    // Per-request quota feasibility over devices: bit `d` set means the
    // request's quota admits its demand on device `d` (devices past 63
    // collapse onto bit 63 — set only when they all admit). A request no
    // device can ever quota-admit is refused here, mirroring the NAK its
    // GVM would answer with.
    let quota_mask = |r: &VgpuRequest| -> u64 {
        let mut mask = 0u64;
        for (d, c) in caps.iter().enumerate() {
            let bit = d.min(63);
            let ok = r.quota.admits(r.task.device_bytes, c.mem_bytes);
            if d <= 63 {
                if ok {
                    mask |= 1 << bit;
                }
            } else if !ok {
                mask &= !(1 << 63);
            }
        }
        mask
    };
    for r in requests {
        if quota_mask(r) == 0 {
            return Err(PlanError::OverQuota {
                request: r.id,
                mem_bytes: r.task.device_bytes,
            });
        }
    }

    // Group requests: gang members coalesce (arrival = first member),
    // everything else is a singleton.
    struct Group {
        arrival: usize,
        tenant: u64,
        gang: Option<u64>,
        members: Vec<usize>,
        mem_bytes: u64,
        quota_fit: u64,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut gang_idx: HashMap<u64, usize> = HashMap::new();
    for (i, r) in requests.iter().enumerate() {
        match r.gang {
            Some(g) => match gang_idx.get(&g) {
                Some(&gi) => {
                    if groups[gi].tenant != r.tenant {
                        return Err(PlanError::MixedTenantGang { gang: g });
                    }
                    groups[gi].members.push(i);
                    groups[gi].mem_bytes += r.task.device_bytes;
                    groups[gi].quota_fit &= quota_mask(r);
                }
                None => {
                    gang_idx.insert(g, groups.len());
                    groups.push(Group {
                        arrival: i,
                        tenant: r.tenant,
                        gang: Some(g),
                        members: vec![i],
                        mem_bytes: r.task.device_bytes,
                        quota_fit: quota_mask(r),
                    });
                }
            },
            None => groups.push(Group {
                arrival: i,
                tenant: r.tenant,
                gang: None,
                members: vec![i],
                mem_bytes: r.task.device_bytes,
                quota_fit: quota_mask(r),
            }),
        }
    }
    let total_groups = groups.len() as u64;

    // Feasibility: every group must fit at least one *empty*
    // quota-feasible device, or no amount of waves will ever place it (a
    // gang whose members' quota-feasible device sets are disjoint is as
    // unplaceable as one that exceeds raw capacity).
    for g in &groups {
        let sessions = g.members.len() as u32;
        if !caps.iter().enumerate().any(|(d, c)| {
            (g.quota_fit >> d.min(63)) & 1 == 1
                && g.mem_bytes <= c.mem_bytes
                && sessions <= c.kernel_slots
        }) {
            return Err(PlanError::Infeasible {
                mem_bytes: g.mem_bytes,
                sessions,
            });
        }
    }

    // Wave loop.
    let mut pending: Vec<Group> = groups;
    let mut assignments: Vec<(usize, usize, u32)> = Vec::new(); // (request idx, device, wave)
    let mut admissions = Vec::new();
    let mut deferred_groups = 0u64;
    let mut wave = 0u32;
    while !pending.is_empty() {
        let mut strategy = policy.build();
        let mut loads: Vec<DeviceLoad> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| DeviceLoad::empty(i, c))
            .collect();
        let mut admitted_any = false;
        loop {
            let views: Vec<PendingGroup> = pending
                .iter()
                .map(|g| PendingGroup {
                    arrival: g.arrival,
                    tenant: g.tenant,
                    gang: g.gang,
                    mem_bytes: g.mem_bytes,
                    sessions: g.members.len() as u32,
                    quota_fit: g.quota_fit,
                })
                .collect();
            let Some(admit) = strategy.admit(&views, &loads) else {
                break;
            };
            assert!(admit.group < pending.len(), "policy admitted unknown group");
            assert!(
                loads[admit.device].fits(&views[admit.group]),
                "policy admitted a group that does not fit"
            );
            let g = pending.remove(admit.group);
            loads[admit.device].mem_used += g.mem_bytes;
            loads[admit.device].slots_used += g.members.len() as u32;
            let mut ids: Vec<u64> = g.members.iter().map(|&i| requests[i].id).collect();
            ids.sort_unstable();
            admissions.push(Admission {
                wave,
                device: admit.device,
                tenant: g.tenant,
                gang: g.gang,
                requests: ids,
            });
            for &i in &g.members {
                assignments.push((i, admit.device, wave));
            }
            admitted_any = true;
        }
        // Feasibility guarantees progress against empty devices; this
        // protects against a policy that refuses a fitting group.
        assert!(
            admitted_any,
            "placement policy made no progress on a feasible wave"
        );
        deferred_groups += pending.len() as u64;
        wave += 1;
    }

    // Slot order within each (device, wave) GVM: request ids ascending.
    let mut per_gvm: BTreeMap<(u32, usize), Vec<usize>> = BTreeMap::new();
    for &(i, device, w) in &assignments {
        per_gvm.entry((w, device)).or_default().push(i);
    }
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for members in per_gvm.values_mut() {
        members.sort_by_key(|&i| requests[i].id);
        for (slot, &i) in members.iter().enumerate() {
            slot_of.insert(i, slot);
        }
    }

    let mut by_request: Vec<Assignment> = Vec::with_capacity(requests.len());
    let mut placed: HashMap<usize, (usize, u32)> =
        assignments.iter().map(|&(i, d, w)| (i, (d, w))).collect();
    for (i, r) in requests.iter().enumerate() {
        let (device, w) = placed.remove(&i).expect("every request is assigned");
        by_request.push(Assignment {
            request: r.id,
            tenant: r.tenant,
            gang: r.gang,
            device,
            wave: w,
            slot: slot_of[&i],
            mem_bytes: r.task.device_bytes,
        });
    }

    Ok(ClusterPlan {
        assignments: by_request,
        waves: wave,
        groups: total_groups,
        deferred_groups,
        admissions,
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Configuration for a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Name prefix for per-(device, wave) GVM instances
    /// (`<name>-d<device>w<wave>` namespaces their queues and segments).
    pub name: String,
    /// Placement policy.
    pub policy: PlacePolicy,
    /// Stream-dispatch policy handed to every GVM.
    pub scheduler: SchedPolicy,
    /// Buffer-lifecycle configuration handed to every GVM.
    pub mem: MemConfig,
    /// `(H2D, kernels, D2H)` rounds each session runs.
    pub rounds: u32,
    /// Arrival skew: session at arrival position `i` starts its protocol
    /// sequence `i * stagger` after connecting.
    pub stagger: SimDuration,
    /// VRAM oversubscription factor for planning, `>= 1`. The planner
    /// admits against `factor ×` each device's physical memory (the
    /// *virtual* capacity, which is also what the `ClusterDevice` record
    /// declares to the co-residency checker); a factor above 1 turns on
    /// demand-swap in every GVM so the physically-overcommitted waves
    /// stay serviceable.
    pub oversubscribe: u32,
}

impl ClusterConfig {
    /// Defaults for a policy: joint-flush scheduling, default memory
    /// layer, one round, no stagger.
    pub fn new(policy: PlacePolicy) -> Self {
        ClusterConfig {
            name: "cluster".to_string(),
            policy,
            scheduler: SchedPolicy::default(),
            mem: MemConfig::default(),
            rounds: 1,
            stagger: SimDuration::ZERO,
            oversubscribe: 1,
        }
    }

    /// Set the VRAM oversubscription factor (clamped to at least 1).
    pub fn with_oversubscribe(mut self, factor: u32) -> Self {
        self.oversubscribe = factor.max(1);
        self
    }

    /// Replace the GVM stream-dispatch policy.
    pub fn with_scheduler(mut self, scheduler: SchedPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replace the GVM buffer-lifecycle configuration.
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Set the per-session round count.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Set the arrival stagger.
    pub fn with_stagger(mut self, stagger: SimDuration) -> Self {
        self.stagger = stagger;
        self
    }
}

/// One per-(device, wave) GVM instance owned by the front-end.
#[derive(Clone)]
pub struct WaveGvm {
    /// Device index the instance serves.
    pub device: usize,
    /// Admission wave it belongs to.
    pub wave: u32,
    /// The prepared (wave 0: running) manager handle.
    pub handle: GvmHandle,
}

/// What one VGPU session did, as collected by its client process.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The request's id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Device the session ran on.
    pub device: usize,
    /// Admission wave.
    pub wave: u32,
    /// Protocol-stage timestamps.
    pub run: TaskRun,
    /// Functional output, if the task carried input data.
    pub output: Option<Vec<u8>>,
}

/// Aggregated counters for a finished cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Sessions placed.
    pub sessions: u64,
    /// Distinct gangs placed.
    pub gangs: u64,
    /// Admission waves executed.
    pub waves: u32,
    /// Deferral events (see [`ClusterPlan::deferred_groups`]).
    pub deferred_groups: u64,
    /// GVM instances booted.
    pub gvms: u64,
    /// Sessions per device.
    pub per_device_sessions: Vec<u64>,
    /// Every per-GVM counter, merged across instances.
    pub gvm: GvmStats,
}

/// A live (or finished) cluster run.
pub struct ClusterHandle {
    /// The placement plan being executed.
    pub plan: ClusterPlan,
    /// Per-(device, wave) managers, wave-major then device order.
    pub gvms: Vec<WaveGvm>,
    /// Session results, pushed as each client finishes.
    pub sessions: Arc<Mutex<Vec<SessionResult>>>,
    /// Opens after every wave drained and all devices shut down.
    pub done: Gate,
    ndev: usize,
}

impl ClusterHandle {
    /// Session results sorted by request id (call after the run).
    pub fn session_results(&self) -> Vec<SessionResult> {
        let mut v = self.sessions.lock().clone();
        v.sort_by_key(|s| s.id);
        v
    }

    /// Aggregate per-GVM and placement counters (call after the run).
    pub fn stats(&self) -> ClusterStats {
        let mut gvm = GvmStats::default();
        for g in &self.gvms {
            gvm.merge(&g.handle.stats.lock());
        }
        let gangs = self
            .plan
            .assignments
            .iter()
            .filter_map(|a| a.gang)
            .collect::<HashSet<_>>()
            .len() as u64;
        ClusterStats {
            sessions: self.plan.assignments.len() as u64,
            gangs,
            waves: self.plan.waves,
            deferred_groups: self.plan.deferred_groups,
            gvms: self.gvms.len() as u64,
            per_device_sessions: self.plan.sessions_per_device(self.ndev),
            gvm,
        }
    }
}

/// The cluster front-end installer.
pub struct Cluster;

impl Cluster {
    /// Plan placements for `requests` over `cudas` and wire the whole run
    /// into `sim`: one GVM per (device, admission wave), one client
    /// process per session, and a supervisor that releases wave `w+1`
    /// only after every wave-`w` manager drains, then shuts the devices
    /// down. Call [`Simulation::run`] afterwards to execute.
    ///
    /// A one-device, one-wave cluster reproduces the direct
    /// [`Gvm::install`] path bit-identically: same spawn order, same
    /// client sequence, and the placement records cost no simulated time.
    pub fn install(
        sim: &mut Simulation,
        node: &Node,
        cudas: &[CudaDevice],
        config: ClusterConfig,
        requests: Vec<VgpuRequest>,
    ) -> Result<ClusterHandle, PlanError> {
        let oversub = u64::from(config.oversubscribe.max(1));
        let caps: Vec<DeviceCap> = cudas
            .iter()
            .map(|c| {
                let mut cap = DeviceCap::from_config(c.device().config());
                cap.mem_bytes = cap.mem_bytes.saturating_mul(oversub);
                cap
            })
            .collect();
        let plan = plan(config.policy, &requests, &caps)?;

        // Declare capacities to the co-residency checker.
        let tracer = sim.tracer();
        for (d, cap) in caps.iter().enumerate() {
            tracer.record_analysis(AnalysisRecord::ClusterDevice {
                device: d as u32,
                mem_bytes: cap.mem_bytes,
                kernel_slots: cap.kernel_slots,
            });
        }

        // One prepared GVM per (wave, device) that received sessions,
        // tasks in slot order. BTreeMap iteration gives wave-major,
        // device-ascending construction order.
        let mut members: BTreeMap<(u32, usize), Vec<&Assignment>> = BTreeMap::new();
        for a in &plan.assignments {
            members.entry((a.wave, a.device)).or_default().push(a);
        }
        let req_of: HashMap<u64, &VgpuRequest> = requests.iter().map(|r| (r.id, r)).collect();
        let mut gvms: Vec<WaveGvm> = Vec::with_capacity(members.len());
        for ((wave, device), mut list) in members {
            list.sort_by_key(|a| a.slot);
            let tasks: Vec<GpuTask> = list
                .iter()
                .map(|a| req_of[&a.request].task.clone())
                .collect();
            let mut gcfg = GvmConfig::new(tasks.len())
                .with_scheduler(config.scheduler.clone())
                .with_mem(config.mem);
            // Sessions' quotas ride into the serving GVM (slot order) so
            // admission re-enforces what placement assumed; configure
            // them only when some session actually carries a cap, so an
            // all-unlimited cluster keeps the seed GVM byte-for-byte.
            let quotas: Vec<MemQuota> = list.iter().map(|a| req_of[&a.request].quota).collect();
            if quotas.iter().any(|q| !q.is_unlimited()) {
                gcfg = gcfg.with_quotas(quotas);
            }
            if config.oversubscribe > 1 {
                gcfg = gcfg.with_swap();
            }
            gcfg.name = format!("{}-d{device}w{wave}", config.name);
            let handle = Gvm::prepare(node, gcfg, tasks);
            gvms.push(WaveGvm {
                device,
                wave,
                handle,
            });
        }

        // Boot wave 0 now; later waves boot from the supervisor.
        for g in gvms.iter().filter(|g| g.wave == 0) {
            Gvm::spawn_prepared(sim, &g.handle, std::slice::from_ref(&cudas[g.device]), node);
        }

        // One client process per session, spawned in arrival order and
        // pinned to a core while cores last (the single-GVM SPMD layout);
        // overflow sessions run unpinned. Clients connect immediately —
        // later waves block on their manager's ready gate.
        let sessions: Arc<Mutex<Vec<SessionResult>>> = Arc::new(Mutex::new(Vec::new()));
        let gvm_of: HashMap<(u32, usize), GvmHandle> = gvms
            .iter()
            .map(|g| ((g.wave, g.device), g.handle.clone()))
            .collect();
        for (idx, req) in requests.iter().enumerate() {
            let a = plan.assignments[idx].clone();
            debug_assert_eq!(a.request, req.id);
            let gvm = gvm_of[&(a.wave, a.device)].clone();
            let collected = Arc::clone(&sessions);
            let arrival =
                SimDuration::from_nanos(config.stagger.as_nanos().saturating_mul(idx as u64));
            let rounds = config.rounds;
            let (id, tenant) = (req.id, req.tenant);
            let body = move |ctx: &mut Ctx| {
                let client = VgpuClient::connect(ctx, &gvm, a.slot);
                if !arrival.is_zero() {
                    ctx.hold(arrival);
                }
                ctx.tracer().record_analysis(AnalysisRecord::ClusterPlace {
                    time: ctx.now(),
                    vgpu: id,
                    tenant,
                    gang: a.gang,
                    device: a.device as u32,
                    wave: a.wave,
                    mem_bytes: a.mem_bytes,
                });
                let (run, output) = client.run_rounds(ctx, rounds);
                ctx.tracer().record_analysis(AnalysisRecord::ClusterEvict {
                    time: ctx.now(),
                    vgpu: id,
                    device: a.device as u32,
                });
                collected.lock().push(SessionResult {
                    id,
                    tenant,
                    device: a.device,
                    wave: a.wave,
                    run,
                    output,
                });
            };
            let name = format!("spmd-{idx}");
            if idx < node.cores() {
                node.spawn_pinned(sim, idx, &name, body)
                    .expect("pin VGPU session process");
            } else {
                sim.spawn(&name, body);
            }
        }

        // Supervisor: gate each wave on the previous one draining, then
        // shut every device down.
        let done = Gate::new();
        let waves = plan.waves;
        let sup_gvms = gvms.clone();
        let sup_cudas = cudas.to_vec();
        let sup_node = node.clone();
        let sup_done = done.clone();
        sim.spawn("supervisor", move |ctx| {
            for w in 1..waves {
                for g in sup_gvms.iter().filter(|g| g.wave == w - 1) {
                    g.handle.done.wait(ctx);
                }
                for g in sup_gvms.iter().filter(|g| g.wave == w) {
                    Gvm::spawn_prepared_from(
                        ctx,
                        &g.handle,
                        std::slice::from_ref(&sup_cudas[g.device]),
                        &sup_node,
                    );
                }
            }
            for g in sup_gvms.iter().filter(|g| g.wave + 1 == waves) {
                g.handle.done.wait(ctx);
            }
            for c in &sup_cudas {
                c.device().shutdown(ctx);
            }
            sup_done.open(ctx);
        });

        Ok(ClusterHandle {
            plan,
            gvms,
            sessions,
            done,
            ndev: cudas.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::KernelDesc;
    use gv_kernels::{KernelTemplate, WorkloadClass};

    fn task(mem: u64) -> GpuTask {
        GpuTask {
            name: "t".into(),
            class: WorkloadClass::Intermediate,
            ctx_switch_cost: SimDuration::from_millis(1),
            device_bytes: mem,
            iterations: 1,
            bytes_in: 64,
            round_bytes_in: Vec::new(),
            input: None,
            bytes_out: 64,
            d2h_offset: 0,
            kernels: vec![KernelTemplate::timing(KernelDesc::new("k", 4, 64))],
        }
    }

    fn req(id: u64, tenant: u64, gang: Option<u64>, mem: u64) -> VgpuRequest {
        VgpuRequest {
            id,
            tenant,
            gang,
            quota: MemQuota::Unlimited,
            task: task(mem),
        }
    }

    fn cap(mem: u64, slots: u32) -> DeviceCap {
        DeviceCap {
            mem_bytes: mem,
            kernel_slots: slots,
        }
    }

    #[test]
    fn merged_stats_carry_coalesce_counters_once() {
        // Cluster aggregation sums each instance's coalesce counters
        // exactly once, so the fused-op ratio of the merged struct is the
        // ratio of sums — no per-GVM double counting.
        let a = GvmStats {
            fused_dma_groups: 2,
            fused_dma_subs: 5,
            batched_launch_waves: 1,
            batched_launches: 4,
            flush_dma_ops: 10,
            ..Default::default()
        };
        let b = GvmStats {
            fused_dma_subs: 3,
            flush_dma_ops: 6,
            ..Default::default()
        };
        let mut merged = GvmStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.fused_dma_groups, 2);
        assert_eq!(merged.fused_dma_subs, 8);
        assert_eq!(merged.batched_launch_waves, 1);
        assert_eq!(merged.batched_launches, 4);
        assert_eq!(merged.flush_dma_ops, 16);
        assert_eq!(merged.fused_dma_ratio(), 8.0 / 16.0);
    }

    #[test]
    fn binpack_consolidates_on_one_device() {
        let reqs: Vec<_> = (0..4).map(|i| req(i, 0, None, 100)).collect();
        let p = plan(PlacePolicy::BinPack, &reqs, &[cap(1000, 8), cap(1000, 8)]).unwrap();
        assert_eq!(p.waves, 1);
        assert_eq!(p.sessions_per_device(2), vec![4, 0]);
    }

    #[test]
    fn spread_balances_across_devices() {
        let reqs: Vec<_> = (0..4).map(|i| req(i, 0, None, 100)).collect();
        let p = plan(PlacePolicy::Spread, &reqs, &[cap(1000, 8), cap(1000, 8)]).unwrap();
        assert_eq!(p.waves, 1);
        assert_eq!(p.sessions_per_device(2), vec![2, 2]);
    }

    #[test]
    fn overflow_defers_to_a_second_wave() {
        // 3 sessions of 400 against one 1000-byte device: two fit, the
        // third waits for wave 1.
        let reqs: Vec<_> = (0..3).map(|i| req(i, 0, None, 400)).collect();
        let p = plan(PlacePolicy::Spread, &reqs, &[cap(1000, 8)]).unwrap();
        assert_eq!(p.waves, 2);
        assert_eq!(p.deferred_groups, 1);
        assert_eq!(p.assignment(2).unwrap().wave, 1);
    }

    #[test]
    fn gang_lands_atomically_or_waits() {
        // Gang of 3×300 cannot share a 1000-byte device with the earlier
        // 200-byte singleton under spread-style filling unless admitted
        // first; the gang policy admits it before the singletons.
        let reqs = vec![
            req(0, 0, None, 200),
            req(1, 0, Some(7), 300),
            req(2, 0, Some(7), 300),
            req(3, 0, Some(7), 300),
            req(4, 0, None, 200),
        ];
        let p = plan(PlacePolicy::Gang, &reqs, &[cap(1000, 8), cap(1000, 8)]).unwrap();
        assert_eq!(p.waves, 1);
        let gang_devs: HashSet<usize> = p
            .assignments
            .iter()
            .filter(|a| a.gang == Some(7))
            .map(|a| a.device)
            .collect();
        assert_eq!(gang_devs.len(), 1, "gang split: {:?}", p.assignments);
        let gang_waves: HashSet<u32> = p
            .assignments
            .iter()
            .filter(|a| a.gang == Some(7))
            .map(|a| a.wave)
            .collect();
        assert_eq!(gang_waves.len(), 1);
    }

    #[test]
    fn drf_alternates_between_unequal_tenants() {
        // Tenant 0 asks big (400), tenant 1 asks small (100): DRF must not
        // starve tenant 1 behind tenant 0's arrivals.
        let reqs = vec![
            req(0, 0, None, 400),
            req(1, 0, None, 400),
            req(2, 1, None, 100),
            req(3, 1, None, 100),
        ];
        let p = plan(PlacePolicy::Drf, &reqs, &[cap(2000, 8)]).unwrap();
        assert_eq!(p.waves, 1);
        // First two admissions go to distinct tenants (both start at
        // share 0; tenant 0 wins the tie, then holds the larger share).
        let first_two: Vec<u64> = p.admissions.iter().take(2).map(|a| a.tenant).collect();
        assert_eq!(first_two, vec![0, 1]);
    }

    #[test]
    fn planning_is_deterministic() {
        let reqs: Vec<_> = (0..12)
            .map(|i| req(i, i % 3, (i % 4 == 0).then_some(i / 4), 50 + 30 * (i % 5)))
            .collect();
        let caps = [cap(400, 4), cap(400, 4), cap(400, 4)];
        for policy in PlacePolicy::all() {
            let a = plan(policy, &reqs, &caps).unwrap();
            let b = plan(policy, &reqs, &caps).unwrap();
            assert_eq!(a.assignments, b.assignments);
            assert_eq!(a.admissions, b.admissions);
        }
    }

    #[test]
    fn slots_are_dense_and_id_ordered_per_gvm() {
        let reqs: Vec<_> = (0..9).rev().map(|i| req(i, 0, None, 100)).collect();
        let p = plan(PlacePolicy::Spread, &reqs, &[cap(1000, 4), cap(1000, 4)]).unwrap();
        let mut per_gvm: BTreeMap<(u32, usize), Vec<(usize, u64)>> = BTreeMap::new();
        for a in &p.assignments {
            per_gvm
                .entry((a.wave, a.device))
                .or_default()
                .push((a.slot, a.request));
        }
        for members in per_gvm.values_mut() {
            members.sort();
            for (slot, &(s, _)) in members.iter().enumerate() {
                assert_eq!(s, slot, "slots dense: {members:?}");
            }
            let ids: Vec<u64> = members.iter().map(|&(_, id)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "slot order follows request ids");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            plan(PlacePolicy::BinPack, &[req(0, 0, None, 10)], &[]),
            Err(PlanError::NoDevices)
        );
        assert_eq!(
            plan(
                PlacePolicy::BinPack,
                &[req(5, 0, None, 10), req(5, 0, None, 10)],
                &[cap(100, 4)]
            ),
            Err(PlanError::DuplicateRequestId(5))
        );
        assert_eq!(
            plan(
                PlacePolicy::BinPack,
                &[req(0, 0, Some(1), 10), req(1, 9, Some(1), 10)],
                &[cap(100, 4)]
            ),
            Err(PlanError::MixedTenantGang { gang: 1 })
        );
        assert_eq!(
            plan(
                PlacePolicy::BinPack,
                &[req(0, 0, None, 500)],
                &[cap(100, 4)]
            ),
            Err(PlanError::Infeasible {
                mem_bytes: 500,
                sessions: 1
            })
        );
    }

    #[test]
    fn every_policy_respects_capacity_in_every_wave() {
        let reqs: Vec<_> = (0..20)
            .map(|i| {
                req(
                    i,
                    (i / 5) % 4,
                    (i % 5 < 2).then_some(i / 5),
                    60 + 25 * (i % 7),
                )
            })
            .collect();
        let caps = [cap(500, 3), cap(400, 4)];
        for policy in PlacePolicy::all() {
            let p = plan(policy, &reqs, &caps).unwrap();
            let mut usage: HashMap<(u32, usize), (u64, u32)> = HashMap::new();
            for a in &p.assignments {
                let e = usage.entry((a.wave, a.device)).or_default();
                e.0 += a.mem_bytes;
                e.1 += 1;
            }
            for ((w, d), (mem, slots)) in usage {
                assert!(mem <= caps[d].mem_bytes, "{policy}: wave {w} dev {d} mem");
                assert!(
                    slots <= caps[d].kernel_slots,
                    "{policy}: wave {w} dev {d} slots"
                );
            }
        }
    }
}

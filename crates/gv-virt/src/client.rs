//! The user-process API layer: the Virtual GPU view.
//!
//! A [`VgpuClient`] is what an SPMD process links against instead of the
//! CUDA runtime: `REQ()`, `SND()`, `STR()`, `STP()`, `RCV()`, `RLS()`
//! exactly as in the paper's Fig. 8, plus [`run_task`](VgpuClient::run_task)
//! which performs the whole cycle and reports the Fig. 3 phase timestamps.
//!
//! Two client tiers coexist:
//!
//! * the legacy infallible methods (`req`, `snd`, …) assume a fault-free
//!   transport and panic on protocol violations — identical to the seed
//!   behavior, used by every timing experiment;
//! * the `try_*` methods drive the same protocol under a [`ClientPolicy`]:
//!   responses are awaited with a deadline, lost messages are retried with
//!   exponential backoff (sequence numbers make retries idempotent on the
//!   GVM side), and a `NAK` or exhausted retry budget surfaces as a
//!   [`TaskError`] instead of a deadlock.

use std::cell::{Cell, RefCell};

use gv_ipc::{MessageQueue, SharedMem};
use gv_mem::{Span, StagingDescriptor};
use gv_sim::{Ctx, RecvTimeout, SimDuration};

use crate::gvm::GvmHandle;
use crate::protocol::{NakReason, Request, RequestKind, Response, ResponseKind, TaskRun};

/// Fault-handling policy for one client.
#[derive(Debug, Clone)]
pub struct ClientPolicy {
    /// How long to wait for each response before retrying. `None` waits
    /// forever (the legacy fault-free behavior).
    pub response_timeout: Option<SimDuration>,
    /// How many times to re-send a request after a timeout before giving
    /// up with [`TaskError::TimedOut`].
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub retry_backoff: SimDuration,
    /// Backoff cap (doubles up to here).
    pub retry_backoff_max: SimDuration,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            response_timeout: None,
            max_retries: 0,
            retry_backoff: SimDuration::from_micros(100),
            retry_backoff_max: SimDuration::from_millis(8),
        }
    }
}

impl ClientPolicy {
    /// A policy that retries lost messages: per-response deadline
    /// `timeout`, up to `max_retries` re-sends with exponential backoff.
    pub fn with_timeout(timeout: SimDuration, max_retries: u32) -> Self {
        ClientPolicy {
            response_timeout: Some(timeout),
            max_retries,
            ..Self::default()
        }
    }
}

/// Why a fault-aware protocol call gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskError {
    /// No response arrived within the retry budget.
    TimedOut {
        /// Stage whose response never came.
        stage: RequestKind,
    },
    /// The GVM answered `NAK`: this rank was evicted or refused.
    Rejected {
        /// Stage that was refused.
        stage: RequestKind,
        /// Why the GVM refused it.
        reason: NakReason,
    },
    /// The response queue closed while waiting (GVM gone).
    Disconnected {
        /// Stage in flight when the queue closed.
        stage: RequestKind,
    },
    /// This client was scripted (via [`VgpuClient::abort_at`]) to abandon
    /// the protocol at this stage — models a crashed/killed SPMD process.
    Aborted {
        /// Stage at which the client walked away.
        stage: RequestKind,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::TimedOut { stage } => {
                write!(f, "timed out waiting for {} response", stage.label())
            }
            TaskError::Rejected { stage, reason } => {
                write!(f, "{} rejected by GVM ({})", stage.label(), reason.label())
            }
            TaskError::Disconnected { stage } => {
                write!(f, "GVM disconnected during {}", stage.label())
            }
            TaskError::Aborted { stage } => write!(f, "client aborted at {}", stage.label()),
        }
    }
}

impl std::error::Error for TaskError {}

/// A process's connection to the GVM.
pub struct VgpuClient {
    rank: usize,
    handle: GvmHandle,
    req: MessageQueue<Request>,
    resp: MessageQueue<Response>,
    shm: SharedMem,
    policy: ClientPolicy,
    abort_stage: Option<RequestKind>,
    seq: Cell<u64>,
    /// Zero-copy transport: the staging-lease grant received on the `REQ`
    /// `ACK`, presented back on every `SND`. `None` on the staged path.
    desc: Cell<Option<StagingDescriptor>>,
    /// Reusable span scratch so steady-state `SND`/`RCV` plan without
    /// allocating.
    spans: RefCell<Vec<Span>>,
    /// Rounds whose `SND` was acknowledged — the round index the *next*
    /// `SND` stages, so shaped sessions
    /// ([`GpuTask::round_bytes_in`](gv_kernels::GpuTask::round_bytes_in))
    /// write each round's own input size into shm.
    snds_sent: Cell<u32>,
}

impl VgpuClient {
    /// Connect rank `rank` to a GVM with the default (legacy, infinite
    /// patience) policy. Blocks until the GVM is initialized (its
    /// resources exist only after boot).
    pub fn connect(ctx: &mut Ctx, handle: &GvmHandle, rank: usize) -> VgpuClient {
        Self::connect_with_policy(ctx, handle, rank, ClientPolicy::default())
    }

    /// Connect with an explicit fault-handling policy.
    pub fn connect_with_policy(
        ctx: &mut Ctx,
        handle: &GvmHandle,
        rank: usize,
        policy: ClientPolicy,
    ) -> VgpuClient {
        handle.ready.wait(ctx);
        let req = handle
            .req_mq
            .open(&handle.endpoints.request_queue())
            .expect("GVM request queue exists after ready");
        let resp = handle
            .resp_mq
            .open(&handle.endpoints.response_queue(rank))
            .expect("GVM response queue exists after ready");
        let shm = handle
            .shm
            .open(&handle.endpoints.shm(rank))
            .expect("GVM shm exists after ready");
        VgpuClient {
            rank,
            handle: handle.clone(),
            req,
            resp,
            shm,
            policy,
            abort_stage: None,
            seq: Cell::new(0),
            desc: Cell::new(None),
            spans: RefCell::new(Vec::new()),
            snds_sent: Cell::new(0),
        }
    }

    /// This client's SPMD rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Script this client to abandon the protocol when it reaches `stage`:
    /// the stage's request is never sent (for `SND`, the shm staging write
    /// is skipped too) and the `try_*` flow returns
    /// [`TaskError::Aborted`]. Models a crashed SPMD process.
    pub fn abort_at(&mut self, stage: RequestKind) {
        self.abort_stage = Some(stage);
    }

    /// Sequence number of the most recent request sent.
    pub fn last_seq(&self) -> u64 {
        self.seq.get()
    }

    /// The staging-lease grant this client currently holds (`None` until
    /// a zero-copy `REQ` is acknowledged, and always on the staged path).
    pub fn descriptor(&self) -> Option<StagingDescriptor> {
        self.desc.get()
    }

    /// One fault-aware protocol exchange: send `kind`, await the matching
    /// response within the policy's deadline, re-send on timeout with
    /// exponential backoff. Stale responses (sequence number below the
    /// current request's — answers to sends we already gave up on) are
    /// discarded without consuming the retry budget.
    fn try_call(&self, ctx: &mut Ctx, kind: RequestKind) -> Result<ResponseKind, TaskError> {
        if self.abort_stage == Some(kind) {
            return Err(TaskError::Aborted { stage: kind });
        }
        let seq = self.seq.get() + 1;
        self.seq.set(seq);
        let msg = Request {
            rank: self.rank,
            kind,
            seq,
            // The descriptor rides only on SND — the stage that consumes
            // the lease window. A stale grant is the GVM's to refuse.
            desc: if kind == RequestKind::Snd {
                self.desc.get()
            } else {
                None
            },
        };
        let mut backoff = self.policy.retry_backoff;
        let mut sends = 0u32;
        loop {
            self.req
                .send(ctx, msg)
                .map_err(|_| TaskError::Disconnected { stage: kind })?;
            sends += 1;
            let deadline = self.policy.response_timeout.map(|t| ctx.now() + t);
            loop {
                let got = match deadline {
                    None => match self.resp.recv(ctx) {
                        Some(r) => r,
                        None => return Err(TaskError::Disconnected { stage: kind }),
                    },
                    Some(d) => {
                        let left = d.duration_since(ctx.now());
                        match self.resp.recv_timeout(ctx, left) {
                            RecvTimeout::Msg(r) => r,
                            RecvTimeout::Closed => {
                                return Err(TaskError::Disconnected { stage: kind })
                            }
                            RecvTimeout::TimedOut => break,
                        }
                    }
                };
                if got.seq != 0 && got.seq < seq {
                    continue; // stale answer to an abandoned send
                }
                // A response carrying a staging-lease grant (the REQ ACK
                // on the zero-copy path) updates the stored descriptor.
                if got.desc.is_some() {
                    self.desc.set(got.desc);
                }
                return match got.kind {
                    ResponseKind::Nak(reason) => Err(TaskError::Rejected {
                        stage: kind,
                        reason,
                    }),
                    other => Ok(other),
                };
            }
            if sends > self.policy.max_retries {
                return Err(TaskError::TimedOut { stage: kind });
            }
            ctx.hold(backoff);
            backoff = next_backoff(backoff, self.policy.retry_backoff_max);
        }
    }

    fn call(&self, ctx: &mut Ctx, kind: RequestKind) -> ResponseKind {
        self.try_call(ctx, kind)
            .unwrap_or_else(|e| panic!("GVM protocol failure: {e}"))
    }

    /// `REQ()`: request VGPU resources.
    pub fn req(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Req);
        debug_assert_eq!(r, ResponseKind::Ack);
    }

    /// Fault-aware `REQ()`.
    pub fn try_req(&self, ctx: &mut Ctx) -> Result<(), TaskError> {
        self.try_call(ctx, RequestKind::Req).map(|_| ())
    }

    /// `SND()`: stage this rank's input into virtual shared memory (the
    /// client-side copy), then ask the GVM to move it to pinned memory.
    pub fn snd(&self, ctx: &mut Ctx) {
        self.try_snd(ctx)
            .unwrap_or_else(|e| panic!("GVM protocol failure: {e}"));
    }

    /// Fault-aware `SND()`. An abort scripted at `SND` fires before the
    /// staging write, like a process dying before it produced its input.
    pub fn try_snd(&self, ctx: &mut Ctx) -> Result<(), TaskError> {
        if self.abort_stage == Some(RequestKind::Snd) {
            return Err(TaskError::Aborted {
                stage: RequestKind::Snd,
            });
        }
        let task = self.handle.task(self.rank);
        let bytes_in = task.bytes_in_for_round(self.snds_sent.get());
        if bytes_in > 0 {
            // Span-wise, mirroring the GVM's staging plan: under chunked
            // pipelining the input lands in shm in the same tiles the GVM
            // will stage, with the single-span plan degenerating to the
            // whole-payload write. On the zero-copy path the segment is
            // backed by the GVM's pinned lease, so this write *is* the
            // staging copy — the GVM never touches the bytes again before
            // H2D. The span scratch is reused so steady-state SNDs do not
            // allocate.
            let mut spans = self.spans.borrow_mut();
            self.handle
                .config
                .mem
                .pipeline
                .plan_into(bytes_in, &mut spans);
            for span in spans.iter() {
                match &task.input {
                    Some(data) => self
                        .shm
                        .write(
                            ctx,
                            span.offset,
                            &data[span.offset as usize..(span.offset + span.len) as usize],
                        )
                        .expect("input fits the shm segment"),
                    None => self
                        .shm
                        .touch(ctx, span.len)
                        .expect("input size fits the shm segment"),
                }
            }
        }
        self.try_call(ctx, RequestKind::Snd)?;
        self.snds_sent.set(self.snds_sent.get() + 1);
        Ok(())
    }

    /// `STR()`: start execution. Blocks until all ranks reached this point
    /// (the GVM's barrier) and the streams were flushed.
    pub fn str(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Str);
        debug_assert_eq!(r, ResponseKind::Ack);
    }

    /// Fault-aware `STR()`.
    pub fn try_str(&self, ctx: &mut Ctx) -> Result<(), TaskError> {
        self.try_call(ctx, RequestKind::Str).map(|_| ())
    }

    /// `STP()` poll loop: query status with exponential backoff until the
    /// GVM acknowledges completion ("If(WAIT), resends STP").
    pub fn stp_until_done(&self, ctx: &mut Ctx) {
        self.try_stp_until_done(ctx)
            .unwrap_or_else(|e| panic!("GVM protocol failure: {e}"));
    }

    /// Fault-aware `STP()` poll loop.
    pub fn try_stp_until_done(&self, ctx: &mut Ctx) -> Result<(), TaskError> {
        let mut backoff = self.handle.config.poll_initial;
        loop {
            match self.try_call(ctx, RequestKind::Stp)? {
                ResponseKind::Ack => return Ok(()),
                _ => {
                    ctx.hold(backoff);
                    backoff = next_backoff(backoff, self.handle.config.poll_max);
                }
            }
        }
    }

    /// `RCV()`: ask the GVM to copy results into shared memory, then read
    /// them out (the client-side copy). Returns the bytes for functional
    /// tasks, `None` for timing-only tasks.
    pub fn rcv(&self, ctx: &mut Ctx) -> Option<Vec<u8>> {
        self.try_rcv(ctx)
            .unwrap_or_else(|e| panic!("GVM protocol failure: {e}"))
    }

    /// Fault-aware `RCV()`.
    pub fn try_rcv(&self, ctx: &mut Ctx) -> Result<Option<Vec<u8>>, TaskError> {
        let task = self.handle.task(self.rank);
        self.try_call(ctx, RequestKind::Rcv)?;
        if task.bytes_out == 0 {
            return Ok(None);
        }
        // On the zero-copy path the RCV ACK means the results already sit
        // in the lease-backed segment (the GVM's final-iteration D2H wrote
        // them there); this read is the only result copy. On the staged
        // path it reads what the GVM's pinned→shm copy produced.
        let mut bytes = Vec::with_capacity(task.bytes_out as usize);
        let mut spans = self.spans.borrow_mut();
        self.handle
            .config
            .mem
            .pipeline
            .plan_into(task.bytes_out, &mut spans);
        for span in spans.iter() {
            bytes.extend(
                self.shm
                    .read(ctx, span.offset, span.len)
                    .expect("output fits the shm segment"),
            );
        }
        Ok(if task.is_functional() {
            Some(bytes)
        } else {
            None
        })
    }

    /// `RLS()`: release VGPU resources.
    pub fn rls(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Rls);
        debug_assert_eq!(r, ResponseKind::Ack);
    }

    /// Fault-aware `RLS()`.
    pub fn try_rls(&self, ctx: &mut Ctx) -> Result<(), TaskError> {
        self.try_call(ctx, RequestKind::Rls).map(|_| ())
    }

    /// Run `rounds` back-to-back execution cycles under one resource
    /// acquisition: REQ once, then rounds × (SND → STR → STP* → RCV), then
    /// RLS — how an iterating SPMD program uses its VGPU. Returns the last
    /// round's timestamps and output. All ranks must use the same round
    /// count (each STR barriers across the group).
    pub fn run_rounds(&self, ctx: &mut Ctx, rounds: u32) -> (TaskRun, Option<Vec<u8>>) {
        self.try_run_rounds(ctx, rounds)
            .unwrap_or_else(|e| panic!("GVM protocol failure: {e}"))
    }

    /// Fault-aware multi-round cycle.
    pub fn try_run_rounds(
        &self,
        ctx: &mut Ctx,
        rounds: u32,
    ) -> Result<(TaskRun, Option<Vec<u8>>), TaskError> {
        assert!(rounds >= 1);
        let steady = self.handle.config.mem.pipeline.steady;
        let start = ctx.now();
        self.try_req(ctx)?;
        let init_done = ctx.now();
        let mut last = None;
        let mut sent_next = false;
        for round in 0..rounds {
            if !sent_next {
                self.try_snd(ctx)?;
            }
            let data_in_done = ctx.now();
            self.try_str(ctx)?;
            // Steady-state overlap: hand next round's input to the GVM
            // right after this round's flush ACK, before settling into the
            // STP poll — the GVM stages (and pre-issues) it while this
            // round's compute and D2H still occupy the device.
            sent_next = false;
            if steady && round + 1 < rounds {
                self.try_snd(ctx)?;
                sent_next = true;
            }
            self.try_stp_until_done(ctx)?;
            let comp_done = ctx.now();
            let output = self.try_rcv(ctx)?;
            let data_out_done = ctx.now();
            last = Some((data_in_done, comp_done, data_out_done, output));
        }
        self.try_rls(ctx)?;
        let end = ctx.now();
        let (data_in_done, comp_done, data_out_done, output) = last.expect("at least one round");
        Ok((
            TaskRun {
                rank: self.rank,
                start,
                init_done,
                data_in_done,
                comp_done,
                data_out_done,
                end,
            },
            output,
        ))
    }

    /// The full execution cycle (paper Fig. 8 right column): REQ → SND →
    /// STR → STP* → RCV → RLS, with Fig. 3 phase timestamps.
    pub fn run_task(&self, ctx: &mut Ctx) -> (TaskRun, Option<Vec<u8>>) {
        self.run_rounds(ctx, 1)
    }

    /// Fault-aware full cycle.
    pub fn try_run_task(&self, ctx: &mut Ctx) -> Result<(TaskRun, Option<Vec<u8>>), TaskError> {
        self.try_run_rounds(ctx, 1)
    }
}

impl std::fmt::Debug for VgpuClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VgpuClient")
            .field("rank", &self.rank)
            .field("gvm", &self.handle.endpoints.gvm)
            .finish()
    }
}

/// Client-side poll hold: exported for tests that emulate partial flows.
pub fn next_backoff(current: SimDuration, max: SimDuration) -> SimDuration {
    (current * 2).min(max)
}

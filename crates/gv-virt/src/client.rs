//! The user-process API layer: the Virtual GPU view.
//!
//! A [`VgpuClient`] is what an SPMD process links against instead of the
//! CUDA runtime: `REQ()`, `SND()`, `STR()`, `STP()`, `RCV()`, `RLS()`
//! exactly as in the paper's Fig. 8, plus [`run_task`](VgpuClient::run_task)
//! which performs the whole cycle and reports the Fig. 3 phase timestamps.

use gv_ipc::{MessageQueue, SharedMem};
use gv_sim::{Ctx, SimDuration};

use crate::gvm::GvmHandle;
use crate::protocol::{Request, RequestKind, Response, TaskRun};

/// A process's connection to the GVM.
pub struct VgpuClient {
    rank: usize,
    handle: GvmHandle,
    req: MessageQueue<Request>,
    resp: MessageQueue<Response>,
    shm: SharedMem,
}

impl VgpuClient {
    /// Connect rank `rank` to a GVM. Blocks until the GVM is initialized
    /// (its resources exist only after boot).
    pub fn connect(ctx: &mut Ctx, handle: &GvmHandle, rank: usize) -> VgpuClient {
        handle.ready.wait(ctx);
        let req = handle
            .req_mq
            .open(&handle.endpoints.request_queue())
            .expect("GVM request queue exists after ready");
        let resp = handle
            .resp_mq
            .open(&handle.endpoints.response_queue(rank))
            .expect("GVM response queue exists after ready");
        let shm = handle
            .shm
            .open(&handle.endpoints.shm(rank))
            .expect("GVM shm exists after ready");
        VgpuClient {
            rank,
            handle: handle.clone(),
            req,
            resp,
            shm,
        }
    }

    /// This client's SPMD rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn call(&self, ctx: &mut Ctx, kind: RequestKind) -> Response {
        self.req
            .send(
                ctx,
                Request {
                    rank: self.rank,
                    kind,
                },
            )
            .expect("GVM request queue open");
        self.resp.recv(ctx).expect("GVM response")
    }

    /// `REQ()`: request VGPU resources.
    pub fn req(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Req);
        debug_assert_eq!(r, Response::Ack);
    }

    /// `SND()`: stage this rank's input into virtual shared memory (the
    /// client-side copy), then ask the GVM to move it to pinned memory.
    pub fn snd(&self, ctx: &mut Ctx) {
        let task = self.handle.task(self.rank).clone();
        if task.bytes_in > 0 {
            match &task.input {
                Some(data) => self
                    .shm
                    .write(ctx, 0, data)
                    .expect("input fits the shm segment"),
                None => self
                    .shm
                    .touch(ctx, task.bytes_in)
                    .expect("input size fits the shm segment"),
            }
        }
        let r = self.call(ctx, RequestKind::Snd);
        debug_assert_eq!(r, Response::Ack);
    }

    /// `STR()`: start execution. Blocks until all ranks reached this point
    /// (the GVM's barrier) and the streams were flushed.
    pub fn str(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Str);
        debug_assert_eq!(r, Response::Ack);
    }

    /// `STP()` poll loop: query status with exponential backoff until the
    /// GVM acknowledges completion ("If(WAIT), resends STP").
    pub fn stp_until_done(&self, ctx: &mut Ctx) {
        let mut backoff = self.handle.config.poll_initial;
        loop {
            match self.call(ctx, RequestKind::Stp) {
                Response::Ack => return,
                Response::Wait => {
                    ctx.hold(backoff);
                    backoff = (backoff * 2).min(self.handle.config.poll_max);
                }
            }
        }
    }

    /// `RCV()`: ask the GVM to copy results into shared memory, then read
    /// them out (the client-side copy). Returns the bytes for functional
    /// tasks, `None` for timing-only tasks.
    pub fn rcv(&self, ctx: &mut Ctx) -> Option<Vec<u8>> {
        let task = self.handle.task(self.rank).clone();
        let r = self.call(ctx, RequestKind::Rcv);
        debug_assert_eq!(r, Response::Ack);
        if task.bytes_out == 0 {
            return None;
        }
        let bytes = self
            .shm
            .read(ctx, 0, task.bytes_out)
            .expect("output fits the shm segment");
        if task.is_functional() {
            Some(bytes)
        } else {
            None
        }
    }

    /// `RLS()`: release VGPU resources.
    pub fn rls(&self, ctx: &mut Ctx) {
        let r = self.call(ctx, RequestKind::Rls);
        debug_assert_eq!(r, Response::Ack);
    }

    /// Run `rounds` back-to-back execution cycles under one resource
    /// acquisition: REQ once, then rounds × (SND → STR → STP* → RCV), then
    /// RLS — how an iterating SPMD program uses its VGPU. Returns the last
    /// round's timestamps and output. All ranks must use the same round
    /// count (each STR barriers across the group).
    pub fn run_rounds(&self, ctx: &mut Ctx, rounds: u32) -> (TaskRun, Option<Vec<u8>>) {
        assert!(rounds >= 1);
        let start = ctx.now();
        self.req(ctx);
        let init_done = ctx.now();
        let mut last = None;
        for _ in 0..rounds {
            self.snd(ctx);
            let data_in_done = ctx.now();
            self.str(ctx);
            self.stp_until_done(ctx);
            let comp_done = ctx.now();
            let output = self.rcv(ctx);
            let data_out_done = ctx.now();
            last = Some((data_in_done, comp_done, data_out_done, output));
        }
        self.rls(ctx);
        let end = ctx.now();
        let (data_in_done, comp_done, data_out_done, output) = last.expect("at least one round");
        (
            TaskRun {
                rank: self.rank,
                start,
                init_done,
                data_in_done,
                comp_done,
                data_out_done,
                end,
            },
            output,
        )
    }

    /// The full execution cycle (paper Fig. 8 right column): REQ → SND →
    /// STR → STP* → RCV → RLS, with Fig. 3 phase timestamps.
    pub fn run_task(&self, ctx: &mut Ctx) -> (TaskRun, Option<Vec<u8>>) {
        let start = ctx.now();
        self.req(ctx);
        let init_done = ctx.now();
        self.snd(ctx);
        let data_in_done = ctx.now();
        self.str(ctx);
        self.stp_until_done(ctx);
        let comp_done = ctx.now();
        let output = self.rcv(ctx);
        let data_out_done = ctx.now();
        self.rls(ctx);
        let end = ctx.now();
        (
            TaskRun {
                rank: self.rank,
                start,
                init_done,
                data_in_done,
                comp_done,
                data_out_done,
                end,
            },
            output,
        )
    }
}

impl std::fmt::Debug for VgpuClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VgpuClient")
            .field("rank", &self.rank)
            .field("gvm", &self.handle.endpoints.gvm)
            .finish()
    }
}

/// Client-side poll hold: exported for tests that emulate partial flows.
pub fn next_backoff(current: SimDuration, max: SimDuration) -> SimDuration {
    (current * 2).min(max)
}

//! Pluggable GVM stream-dispatch scheduling.
//!
//! The paper's GVM flushes all VGPU streams behind a single full-width
//! barrier (§V, Fig. 8). That is optimal when every rank arrives at `STR`
//! together — the SPMD steady state — but leaves the GPU idle whenever
//! arrivals are staggered (startup skew, load imbalance, recovery after an
//! eviction). The follow-up literature (Li et al., arXiv:1511.07658;
//! Prades et al., arXiv:1606.04473) closes that gap with VGPU
//! task-scheduling strategies; this module reproduces the idea as a
//! [`Scheduler`] trait the GVM serve loop consults at every `STR` receipt,
//! membership change (eviction/release), and batch deadline.
//!
//! Four policies:
//!
//! * [`SchedPolicy::JointFlush`] — the paper's behaviour, kept as the
//!   default: wait until every active rank is barriered, then flush all
//!   streams together.
//! * [`SchedPolicy::Fcfs`] — dispatch each rank's stream the moment its
//!   `STR` arrives. Best under heavy arrival skew; gives up cross-rank
//!   copy/compute overlap within a flush window.
//! * [`SchedPolicy::AdaptiveBatch`] — flush as soon as `k` ranks are
//!   pending or a calibrated timeout expires, whichever is first. Spans
//!   the space between the other two.
//! * [`SchedPolicy::ShortestJobFirst`] — barrier like `JointFlush`, then
//!   dispatch pending streams one at a time in ascending order of the
//!   analytical cost estimate (gv-model Eq. (4) at `n = 1`) derived from
//!   each rank's declared task profile. Minimizes mean turnaround for
//!   heterogeneous mixes.
//!
//! Every policy is *work conserving given its trigger* and *functionally
//! transparent*: it only chooses when and in what order barriered streams
//! are submitted, never what work is submitted, so results stay
//! bit-identical to the direct-sharing baseline (enforced by
//! `tests/sched_differential.rs`).

use gv_gpu::{estimate_kernel_time, DeviceConfig};
use gv_ipc::NodeConfig;
use gv_kernels::GpuTask;
use gv_model::{ExecutionProfile, SpeedupModel};
use gv_sim::SimDuration;

/// One flush group, in stream-submission order. The GVM submits the
/// listed ranks' streams back-to-back, then ACKs them (in `STR` arrival
/// order) and removes them from the barrier.
pub type Dispatch = Vec<usize>;

/// Which scheduling policy a [`crate::GvmConfig`] runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// The paper's joint flush: full-width barrier over active ranks.
    #[default]
    JointFlush,
    /// Dispatch each `STR` immediately on arrival.
    Fcfs,
    /// Flush when `k` ranks are pending or `timeout` elapses since the
    /// first pending `STR` (`None` = wait for the width trigger alone).
    AdaptiveBatch {
        /// Pending-rank count that triggers a flush (clamped to the
        /// active-rank count, so evictions can never push the trigger out
        /// of reach).
        k: usize,
        /// Deadline relative to the first pending `STR`; `None` disables
        /// the timer (`AdaptiveBatch { k: n, timeout: None }` is exactly
        /// `JointFlush` for an `n`-rank group).
        timeout: Option<SimDuration>,
    },
    /// Barrier like `JointFlush`, then dispatch one stream at a time in
    /// ascending modeled-cost order.
    ShortestJobFirst,
}

impl SchedPolicy {
    /// Stable label (CSV column, CLI argument, trace record).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::JointFlush => "joint",
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::AdaptiveBatch { .. } => "adaptive",
            SchedPolicy::ShortestJobFirst => "sjf",
        }
    }

    /// Parse a CLI label: `joint`, `fcfs`, `sjf`, `adaptive` (k = 2, no
    /// timer), or `adaptive:<k>`.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "joint" => Some(SchedPolicy::JointFlush),
            "fcfs" => Some(SchedPolicy::Fcfs),
            "sjf" => Some(SchedPolicy::ShortestJobFirst),
            "adaptive" => Some(SchedPolicy::AdaptiveBatch {
                k: 2,
                timeout: None,
            }),
            _ => {
                let k = s.strip_prefix("adaptive:")?.parse().ok()?;
                (k >= 1).then_some(SchedPolicy::AdaptiveBatch { k, timeout: None })
            }
        }
    }

    /// May a flush cover a strict subset of the barriered ranks? Joint
    /// flush never does; everything else may (recorded in the trace so the
    /// conformance linter picks the matching flush-width rule).
    pub fn partial_flush(&self) -> bool {
        !matches!(self, SchedPolicy::JointFlush)
    }

    /// Instantiate the policy. `costs_ms[r]` is the modeled single-cycle
    /// service estimate for rank `r`'s task (only `ShortestJobFirst` reads
    /// it).
    pub fn build(&self, costs_ms: Vec<f64>) -> Box<dyn Scheduler> {
        match self {
            SchedPolicy::JointFlush => Box::new(JointFlush),
            SchedPolicy::Fcfs => Box::new(Fcfs),
            SchedPolicy::AdaptiveBatch { k, timeout } => Box::new(AdaptiveBatch {
                k: *k,
                timeout: *timeout,
            }),
            SchedPolicy::ShortestJobFirst => Box::new(ShortestJobFirst { costs_ms }),
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The GVM's dispatch oracle. All hooks receive `pending` — the barriered
/// ranks in `STR` arrival order — and `active`, the current count of
/// non-evicted, non-released ranks, and return zero or more flush groups.
/// Rank indices in a returned group must come from `pending`; the GVM
/// submits each group's streams in the given order.
pub trait Scheduler {
    /// The policy label (matches [`SchedPolicy::name`]).
    fn name(&self) -> &'static str;

    /// Whether flushes may cover a strict subset of the barriered set
    /// (drives the conformance linter's flush-width rule).
    fn partial_flush(&self) -> bool;

    /// Deadline relative to the first pending `STR` after which
    /// [`Scheduler::on_deadline`] fires. `None` = no timer.
    fn batch_timeout(&self) -> Option<SimDuration> {
        None
    }

    /// A new `STR` arrived (it is the last element of `pending`).
    fn on_str(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch>;

    /// Group membership changed (eviction or release). The barrier that
    /// was out of reach may now be satisfiable at the reduced width —
    /// policies must re-evaluate here or stragglers hang (this hook *is*
    /// the width re-arm; the serve loop no longer hard-codes one).
    fn on_membership(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch>;

    /// The [`Scheduler::batch_timeout`] deadline expired with `pending`
    /// still barriered.
    fn on_deadline(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch>;
}

/// `pending` sorted ascending — the paper's rank-index submission order.
fn joint_group(pending: &[usize]) -> Vec<Dispatch> {
    let mut group = pending.to_vec();
    group.sort_unstable();
    vec![group]
}

struct JointFlush;

impl Scheduler for JointFlush {
    fn name(&self) -> &'static str {
        "joint"
    }

    fn partial_flush(&self) -> bool {
        false
    }

    fn on_str(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        if !pending.is_empty() && pending.len() >= active {
            joint_group(pending)
        } else {
            Vec::new()
        }
    }

    fn on_membership(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        self.on_str(pending, active)
    }

    fn on_deadline(&mut self, pending: &[usize], _active: usize) -> Vec<Dispatch> {
        if pending.is_empty() {
            Vec::new()
        } else {
            joint_group(pending)
        }
    }
}

struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn partial_flush(&self) -> bool {
        true
    }

    fn on_str(&mut self, pending: &[usize], _active: usize) -> Vec<Dispatch> {
        pending.iter().map(|&r| vec![r]).collect()
    }

    fn on_membership(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        self.on_str(pending, active)
    }

    fn on_deadline(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        self.on_str(pending, active)
    }
}

struct AdaptiveBatch {
    k: usize,
    timeout: Option<SimDuration>,
}

impl Scheduler for AdaptiveBatch {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn partial_flush(&self) -> bool {
        true
    }

    fn batch_timeout(&self) -> Option<SimDuration> {
        self.timeout
    }

    fn on_str(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        // Clamping to `active` is the eviction re-arm fix: a trigger of
        // `k` ranks can never be met once fewer than `k` remain alive.
        let trigger = self.k.min(active).max(1);
        if pending.len() >= trigger {
            joint_group(pending)
        } else {
            Vec::new()
        }
    }

    fn on_membership(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        if pending.is_empty() {
            Vec::new()
        } else {
            self.on_str(pending, active)
        }
    }

    fn on_deadline(&mut self, pending: &[usize], _active: usize) -> Vec<Dispatch> {
        if pending.is_empty() {
            Vec::new()
        } else {
            joint_group(pending)
        }
    }
}

struct ShortestJobFirst {
    costs_ms: Vec<f64>,
}

impl ShortestJobFirst {
    /// Singleton groups in ascending modeled-cost order (rank index breaks
    /// ties, keeping the schedule deterministic).
    fn sorted_singletons(&self, pending: &[usize]) -> Vec<Dispatch> {
        let mut order = pending.to_vec();
        order.sort_by(|&a, &b| {
            let ca = self.costs_ms.get(a).copied().unwrap_or(0.0);
            let cb = self.costs_ms.get(b).copied().unwrap_or(0.0);
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.into_iter().map(|r| vec![r]).collect()
    }
}

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn partial_flush(&self) -> bool {
        true
    }

    fn on_str(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        if !pending.is_empty() && pending.len() >= active {
            self.sorted_singletons(pending)
        } else {
            Vec::new()
        }
    }

    fn on_membership(&mut self, pending: &[usize], active: usize) -> Vec<Dispatch> {
        self.on_str(pending, active)
    }

    fn on_deadline(&mut self, pending: &[usize], _active: usize) -> Vec<Dispatch> {
        if pending.is_empty() {
            Vec::new()
        } else {
            self.sorted_singletons(pending)
        }
    }
}

/// The analytical execution profile of one declared task on the given
/// device/node, in the model's millisecond units: staging plus H2D per
/// iteration, wave-exact kernel estimates, D2H plus destaging.
pub fn task_profile(task: &GpuTask, dev: &DeviceConfig, node: &NodeConfig) -> ExecutionProfile {
    let iters = task.iterations as f64;
    let h2d = node.memcpy_time(task.bytes_in).as_millis_f64()
        + dev.copy_time(task.bytes_in, true, true).as_millis_f64();
    let d2h = dev.copy_time(task.bytes_out, false, true).as_millis_f64()
        + node.memcpy_time(task.bytes_out).as_millis_f64();
    let comp: f64 = task
        .kernels
        .iter()
        .map(|k| estimate_kernel_time(dev, &k.desc).as_millis_f64())
        .sum();
    ExecutionProfile {
        t_init: 0.0,
        t_ctx_switch: task.ctx_switch_cost.as_millis_f64(),
        t_data_in: iters * h2d,
        t_comp: iters * comp,
        t_data_out: iters * d2h,
    }
}

/// Modeled service estimate for one rank's task in ms: gv-model Eq. (4)
/// evaluated at `n = 1` (one virtualized cycle, no sharing). Degenerate
/// profiles (zero-work tasks) cost `0.0`.
pub fn estimate_cost_ms(task: &GpuTask, dev: &DeviceConfig, node: &NodeConfig) -> f64 {
    let profile = task_profile(task, dev, node);
    if profile.is_valid() {
        SpeedupModel::new(profile).total_vt(1)
    } else {
        0.0
    }
}

/// A calibrated [`SchedPolicy::AdaptiveBatch`] timeout for a task mix:
/// half the cheapest nonzero modeled service time. Waiting longer than
/// that for stragglers costs more than dispatching the cheapest pending
/// stream alone would.
pub fn calibrated_batch_timeout(
    tasks: &[GpuTask],
    dev: &DeviceConfig,
    node: &NodeConfig,
) -> SimDuration {
    let min = tasks
        .iter()
        .map(|t| estimate_cost_ms(t, dev, node))
        .filter(|c| *c > 0.0)
        .fold(f64::INFINITY, f64::min);
    if min.is_finite() {
        SimDuration::from_millis_f64(min / 2.0)
    } else {
        SimDuration::from_millis(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for label in ["joint", "fcfs", "adaptive", "sjf"] {
            let p = SchedPolicy::parse(label).expect("known label");
            assert_eq!(p.name(), label);
        }
        assert_eq!(
            SchedPolicy::parse("adaptive:4"),
            Some(SchedPolicy::AdaptiveBatch {
                k: 4,
                timeout: None
            })
        );
        assert_eq!(SchedPolicy::parse("adaptive:0"), None);
        assert_eq!(SchedPolicy::parse("rr"), None);
    }

    #[test]
    fn joint_waits_for_full_width() {
        let mut s = SchedPolicy::JointFlush.build(Vec::new());
        assert!(s.on_str(&[2], 3).is_empty());
        assert!(s.on_str(&[2, 0], 3).is_empty());
        assert_eq!(s.on_str(&[2, 0, 1], 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn joint_rearms_on_membership_change() {
        let mut s = SchedPolicy::JointFlush.build(Vec::new());
        assert!(s.on_str(&[0, 2], 3).is_empty());
        // Rank 1 evicted: the reduced width is now satisfied.
        assert_eq!(s.on_membership(&[0, 2], 2), vec![vec![0, 2]]);
    }

    #[test]
    fn fcfs_dispatches_immediately_in_arrival_order() {
        let mut s = SchedPolicy::Fcfs.build(Vec::new());
        assert_eq!(s.on_str(&[2], 3), vec![vec![2]]);
        assert_eq!(s.on_str(&[2, 0], 3), vec![vec![2], vec![0]]);
    }

    #[test]
    fn adaptive_triggers_at_k_clamped_to_active() {
        let mut s = SchedPolicy::AdaptiveBatch {
            k: 3,
            timeout: None,
        }
        .build(Vec::new());
        assert!(s.on_str(&[1], 4).is_empty());
        assert!(s.on_str(&[1, 3], 4).is_empty());
        assert_eq!(s.on_str(&[1, 3, 0], 4), vec![vec![0, 1, 3]]);
        // Only two ranks left alive: k = 3 clamps down to 2.
        assert_eq!(s.on_str(&[1, 3], 2), vec![vec![1, 3]]);
    }

    #[test]
    fn adaptive_deadline_flushes_whatever_is_pending() {
        let mut s = SchedPolicy::AdaptiveBatch {
            k: 8,
            timeout: Some(SimDuration::from_millis(1)),
        }
        .build(Vec::new());
        assert_eq!(s.batch_timeout(), Some(SimDuration::from_millis(1)));
        assert!(s.on_str(&[5], 8).is_empty());
        assert_eq!(s.on_deadline(&[5], 8), vec![vec![5]]);
        assert!(s.on_deadline(&[], 8).is_empty());
    }

    #[test]
    fn sjf_orders_by_cost_then_rank() {
        let mut s = SchedPolicy::ShortestJobFirst.build(vec![5.0, 1.0, 1.0, 0.5]);
        assert!(s.on_str(&[0, 1], 4).is_empty());
        assert_eq!(
            s.on_str(&[0, 1, 2, 3], 4),
            vec![vec![3], vec![1], vec![2], vec![0]]
        );
    }

    #[test]
    fn only_joint_is_non_partial() {
        assert!(!SchedPolicy::JointFlush.partial_flush());
        assert!(SchedPolicy::Fcfs.partial_flush());
        assert!(SchedPolicy::ShortestJobFirst.partial_flush());
        assert!(SchedPolicy::AdaptiveBatch {
            k: 1,
            timeout: None
        }
        .partial_flush());
    }
}

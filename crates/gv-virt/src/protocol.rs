//! The GVM wire protocol (paper Fig. 8).
//!
//! User processes talk to the GPU Virtualization Manager through two POSIX
//! message queues: a shared *request* queue into the GVM and a per-process
//! *response* queue back. The request vocabulary is exactly the paper's:
//!
//! | Message | Meaning |
//! |---------|---------|
//! | `REQ`   | request VGPU resources for this process |
//! | `SND`   | GPU input data is in my virtual shared memory — stage it |
//! | `STR`   | start executing my GPU program (barrier across all processes) |
//! | `STP`   | query execution status (`ACK` done / `WAIT` still running) |
//! | `RCV`   | copy my results back into my virtual shared memory |
//! | `RLS`   | release my VGPU resources |

use gv_mem::StagingDescriptor;
use gv_sim::SimTime;

/// Request kinds a user process can send (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Request VGPU resources.
    Req,
    /// Input staged in virtual shared memory; copy to pinned.
    Snd,
    /// Start execution (GVM barriers until all processes send this).
    Str,
    /// Status query.
    Stp,
    /// Retrieve results into virtual shared memory.
    Rcv,
    /// Release resources.
    Rls,
}

impl RequestKind {
    /// Every protocol stage, in cycle order.
    pub const ALL: [RequestKind; 6] = [
        RequestKind::Req,
        RequestKind::Snd,
        RequestKind::Str,
        RequestKind::Stp,
        RequestKind::Rcv,
        RequestKind::Rls,
    ];

    /// The paper's wire mnemonic, e.g. `"STR"`.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Req => "REQ",
            RequestKind::Snd => "SND",
            RequestKind::Str => "STR",
            RequestKind::Stp => "STP",
            RequestKind::Rcv => "RCV",
            RequestKind::Rls => "RLS",
        }
    }

    /// Parse a wire mnemonic produced by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<RequestKind> {
        RequestKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// A request message: sender rank + kind + per-client sequence number.
///
/// The sequence number makes client retries safe: a GVM that already served
/// `(rank, seq)` re-sends its previous answer instead of re-executing the
/// stage (a retried `STR` must not enter the barrier twice, a retried `RLS`
/// must not release twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// SPMD rank of the sender.
    pub rank: usize,
    /// What is being asked.
    pub kind: RequestKind,
    /// Per-client monotone sequence number (starts at 1; 0 = unsequenced
    /// legacy traffic, never deduplicated).
    pub seq: u64,
    /// Zero-copy transport: the staging descriptor this `SND` presents
    /// back to the GVM (the grant received at `REQ`). `None` on every
    /// other stage and on the staged-copy path.
    pub desc: Option<StagingDescriptor>,
}

impl Request {
    /// A descriptor-less request (the staged-copy wire format).
    pub fn new(rank: usize, kind: RequestKind, seq: u64) -> Request {
        Request {
            rank,
            kind,
            seq,
            desc: None,
        }
    }
}

/// Why the GVM permanently rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NakReason {
    /// The rank was (or is being) evicted from the session.
    Evicted,
    /// Device memory could not be provided even after demand-swapping.
    Oom,
    /// The session's device-memory demand exceeds its admission quota;
    /// the GVM never silently exceeds a quota.
    OverQuota,
    /// The `SND` presented a staging descriptor whose generation no
    /// longer matches the lease (the lease was recycled or retired since
    /// the grant); writing through it would alias another rank's buffer.
    Stale,
}

impl NakReason {
    /// Short diagnostic label, e.g. `"over-quota"`.
    pub fn label(self) -> &'static str {
        match self {
            NakReason::Evicted => "evicted",
            NakReason::Oom => "oom",
            NakReason::OverQuota => "over-quota",
            NakReason::Stale => "stale-descriptor",
        }
    }
}

/// What the GVM answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Request completed.
    Ack,
    /// Execution still in progress (answer to `STP` only).
    Wait,
    /// Request permanently rejected — the rank was evicted, its resources
    /// could not be provided, or its quota was exceeded; retrying is
    /// pointless. Carries the reason for client-side reporting.
    Nak(NakReason),
}

/// A response message from the GVM, echoing the request's sequence number
/// so clients can discard stale answers after a timeout-and-retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Sequence number of the request being answered.
    pub seq: u64,
    /// The answer.
    pub kind: ResponseKind,
    /// Zero-copy transport: the staging-lease grant handed out at `REQ`
    /// `ACK` time. The client writes its payload through this window and
    /// presents the descriptor back on `SND`. `None` everywhere else.
    pub desc: Option<StagingDescriptor>,
}

impl Response {
    /// An `ACK` for request `seq`.
    pub fn ack(seq: u64) -> Response {
        Response {
            seq,
            kind: ResponseKind::Ack,
            desc: None,
        }
    }

    /// A `WAIT` for request `seq`.
    pub fn wait(seq: u64) -> Response {
        Response {
            seq,
            kind: ResponseKind::Wait,
            desc: None,
        }
    }

    /// An eviction `NAK` for request `seq`.
    pub fn nak(seq: u64) -> Response {
        Response::nak_reason(seq, NakReason::Evicted)
    }

    /// A `NAK` for request `seq` carrying an explicit reason.
    pub fn nak_reason(seq: u64, reason: NakReason) -> Response {
        Response {
            seq,
            kind: ResponseKind::Nak(reason),
            desc: None,
        }
    }

    /// `self` carrying a staging-lease grant.
    pub fn with_desc(self, desc: StagingDescriptor) -> Response {
        Response {
            desc: Some(desc),
            ..self
        }
    }
}

/// Shared-memory and queue names, derived from a GVM instance name so
/// several GVMs can coexist in one simulation.
#[derive(Debug, Clone)]
pub struct Endpoints {
    /// GVM instance name.
    pub gvm: String,
}

impl Endpoints {
    /// Endpoints for a GVM instance called `gvm`.
    pub fn new(gvm: &str) -> Self {
        Endpoints {
            gvm: gvm.to_string(),
        }
    }

    /// Name of the shared request queue.
    pub fn request_queue(&self) -> String {
        format!("/{}-req", self.gvm)
    }

    /// Name of rank `r`'s response queue.
    pub fn response_queue(&self, r: usize) -> String {
        format!("/{}-resp-{r}", self.gvm)
    }

    /// Name of rank `r`'s virtual shared memory segment.
    pub fn shm(&self, r: usize) -> String {
        format!("/{}-shm-{r}", self.gvm)
    }
}

/// Timestamps of one task execution as observed by the client process,
/// aligned with the paper's Fig. 3 execution-cycle stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRun {
    /// SPMD rank.
    pub rank: usize,
    /// Process start (before any GPU initialization).
    pub start: SimTime,
    /// After initialization (context creation / `REQ` acknowledged).
    pub init_done: SimTime,
    /// After input data reached the device path (`SND` acknowledged /
    /// synchronous H2D returned).
    pub data_in_done: SimTime,
    /// After kernel execution finished (`STP` acknowledged / stream sync).
    pub comp_done: SimTime,
    /// After results returned to the process.
    pub data_out_done: SimTime,
    /// After resource release.
    pub end: SimTime,
}

impl TaskRun {
    /// `Tinit` for this process.
    pub fn t_init(&self) -> f64 {
        self.init_done.duration_since(self.start).as_millis_f64()
    }

    /// `Tdata_in` for this process.
    pub fn t_data_in(&self) -> f64 {
        self.data_in_done
            .duration_since(self.init_done)
            .as_millis_f64()
    }

    /// `Tcomp` for this process.
    pub fn t_comp(&self) -> f64 {
        self.comp_done
            .duration_since(self.data_in_done)
            .as_millis_f64()
    }

    /// `Tdata_out` for this process.
    pub fn t_data_out(&self) -> f64 {
        self.data_out_done
            .duration_since(self.comp_done)
            .as_millis_f64()
    }

    /// Whole-cycle duration for this process.
    pub fn total(&self) -> f64 {
        self.end.duration_since(self.start).as_millis_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::SimDuration;

    #[test]
    fn request_kind_labels_roundtrip() {
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(RequestKind::from_label("NOP"), None);
    }

    #[test]
    fn response_constructors_carry_seq() {
        assert_eq!(Response::ack(7).kind, ResponseKind::Ack);
        assert_eq!(Response::wait(7).seq, 7);
        assert_eq!(
            Response::nak(9),
            Response {
                seq: 9,
                kind: ResponseKind::Nak(NakReason::Evicted),
                desc: None,
            }
        );
        assert_eq!(
            Response::nak_reason(9, NakReason::OverQuota).kind,
            ResponseKind::Nak(NakReason::OverQuota)
        );
    }

    #[test]
    fn descriptor_rides_the_wire() {
        let desc = StagingDescriptor {
            segment: 3,
            offset: 0,
            len: 64,
            generation: 2,
        };
        let granted = Response::ack(5).with_desc(desc);
        assert_eq!(granted.desc, Some(desc));
        assert_eq!(granted.kind, ResponseKind::Ack);
        assert_eq!(Request::new(1, RequestKind::Snd, 2).desc, None);
        assert_eq!(NakReason::Stale.label(), "stale-descriptor");
    }

    #[test]
    fn endpoints_are_namespaced() {
        let e = Endpoints::new("gvm0");
        assert_eq!(e.request_queue(), "/gvm0-req");
        assert_eq!(e.response_queue(3), "/gvm0-resp-3");
        assert_eq!(e.shm(7), "/gvm0-shm-7");
    }

    #[test]
    fn taskrun_phase_math() {
        let t0 = SimTime::ZERO;
        let ms = SimDuration::from_millis;
        let run = TaskRun {
            rank: 0,
            start: t0,
            init_done: t0 + ms(10),
            data_in_done: t0 + ms(30),
            comp_done: t0 + ms(130),
            data_out_done: t0 + ms(150),
            end: t0 + ms(151),
        };
        assert_eq!(run.t_init(), 10.0);
        assert_eq!(run.t_data_in(), 20.0);
        assert_eq!(run.t_comp(), 100.0);
        assert_eq!(run.t_data_out(), 20.0);
        assert_eq!(run.total(), 151.0);
    }
}

//! The GPU Virtualization Manager (paper §V).
//!
//! The GVM is a run-time process that owns the *single* GPU context and all
//! GPU resources. At initialization it creates, for every SPMD rank: a
//! virtual shared memory segment, a response queue, a CUDA stream, device
//! memory, and pinned staging buffers, and pre-binds the rank's kernels —
//! then serves `REQ/SND/STR/STP/RCV/RLS` requests. `STR` requests are
//! buffered behind a barrier and all streams are flushed together so Fermi
//! can overlap copies with compute and run small kernels concurrently
//! within the one context.
//!
//! *When* buffered streams are flushed is delegated to a pluggable
//! [`SchedPolicy`] (see [`crate::sched`]): the paper's joint full-width
//! flush is the default, with FCFS, adaptive batching, and
//! shortest-job-first available for staggered or heterogeneous groups.
//! The scheduler also owns the barrier-width computation, so eviction and
//! release re-arm the barrier through the same policy code path that
//! dispatches it.
//!
//! With [`GvmConfig::fault_tolerance`] enabled the serve loop degrades
//! gracefully instead of wedging: requests are received with a deadline, a
//! rank that stops responding (crashed client, lost message beyond the
//! client's retry budget) is *evicted* — its device memory, shared-memory
//! segment and response queue are reclaimed as an implicit `RLS` — and the
//! `STR` barrier is re-armed at the reduced width so the surviving ranks
//! still flush and complete. Sequence numbers on requests make client
//! retries idempotent: a stage the GVM already served is answered from the
//! recorded response instead of being re-executed.

use std::sync::Arc;

use gv_cuda::CudaDevice;
use gv_gpu::DevicePtr;
use gv_ipc::{MessageQueue, MqRegistry, Node, SharedMem, ShmRegistry};
use gv_kernels::GpuTask;
use gv_mem::{
    AdaptiveChooser, CachedAlloc, CoalesceMember, CoalescePlan, DeviceAllocCache, LeaseBacking,
    MemConfig, PipelineConfig, StagingDescriptor, StagingLease, StagingPool,
};
use gv_sim::{Ctx, Gate, RecvTimeout, SimDuration, Simulation};
use parking_lot::Mutex;

use crate::protocol::{Endpoints, NakReason, Request, RequestKind, Response, ResponseKind};
use crate::quota::MemQuota;
use crate::sched::{self, Dispatch, SchedPolicy, Scheduler};

/// Recovery knobs for a fault-tolerant GVM (see
/// [`GvmConfig::fault_tolerance`]).
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// How long the `STR` barrier waits for stragglers once at least one
    /// rank has arrived, before evicting the missing ranks and flushing at
    /// reduced width.
    pub barrier_timeout: SimDuration,
    /// How long the serve loop waits for *any* request before declaring
    /// the remaining active ranks dead and evicting them.
    pub idle_timeout: SimDuration,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            barrier_timeout: SimDuration::from_millis(20),
            idle_timeout: SimDuration::from_millis(100),
        }
    }
}

/// GVM configuration.
#[derive(Debug, Clone)]
pub struct GvmConfig {
    /// Instance name (namespaces queues and segments).
    pub name: String,
    /// Number of SPMD processes served (the `STR` barrier width).
    pub ntask: usize,
    /// Client `STP` poll backoff: initial interval.
    pub poll_initial: SimDuration,
    /// Client `STP` poll backoff: cap.
    pub poll_max: SimDuration,
    /// Ablation: drain each rank's stream before flushing the next (no
    /// cross-process overlap — what a naive time-sharing manager would do).
    pub serial_flush: bool,
    /// Depth bound for the shared request queue (`None` = unbounded).
    /// A bounded queue exerts backpressure: senders block in simulated
    /// time until the GVM drains.
    pub req_queue_capacity: Option<usize>,
    /// `Some` enables graceful degradation: timed receives, rank eviction
    /// with resource reclamation, reduced-width barrier re-arming, and
    /// device memory allocated lazily at first `SND` (overcommit) instead
    /// of at boot. `None` keeps the seed's fault-free behavior exactly.
    pub fault_tolerance: Option<FtConfig>,
    /// Stream-dispatch policy (default: the paper's joint flush).
    pub scheduler: SchedPolicy,
    /// Buffer-lifecycle configuration (staging pool is always on; chunked
    /// copy/compute pipelining is off by default, which keeps the GVM
    /// bit-identical to serial staging).
    pub mem: MemConfig,
    /// Per-rank device-memory quotas (index = rank; short vectors pad
    /// with [`MemQuota::Unlimited`]). `None` disables quota accounting
    /// entirely. With every quota unlimited the GVM's schedule is
    /// bit-identical to `None` — only `QuotaSet`/`QuotaCharge`/
    /// `QuotaCredit` analysis records are added. Any *finite* quota
    /// switches device allocation to the lazy first-`SND` path so an
    /// over-quota demand is answered with an `OverQuota` NAK at admission
    /// instead of a boot-time panic.
    pub quotas: Option<Vec<MemQuota>>,
    /// Enable VRAM oversubscription by demand-swap: when a lazy
    /// allocation does not fit, idle working sets parked in the
    /// device-allocation cache are evicted to pooled pinned host staging
    /// (LRU by last release) until the allocation fits, and restored
    /// through the chunked planner on next touch.
    pub swap: bool,
}

impl GvmConfig {
    /// Defaults for `ntask` processes.
    pub fn new(ntask: usize) -> Self {
        GvmConfig {
            name: "gvm".to_string(),
            ntask,
            poll_initial: SimDuration::from_micros(50),
            poll_max: SimDuration::from_millis(4),
            serial_flush: false,
            req_queue_capacity: None,
            fault_tolerance: None,
            scheduler: SchedPolicy::JointFlush,
            mem: MemConfig::default(),
            quotas: None,
            swap: false,
        }
    }

    /// `self` with the given stream-dispatch policy.
    pub fn with_scheduler(self, scheduler: SchedPolicy) -> Self {
        GvmConfig { scheduler, ..self }
    }

    /// `self` with the given buffer-lifecycle configuration (e.g.
    /// [`MemConfig::pipelined`] to enable chunked transfers).
    pub fn with_mem(self, mem: MemConfig) -> Self {
        GvmConfig { mem, ..self }
    }

    /// The serial-flush ablation variant.
    pub fn serial_flush(ntask: usize) -> Self {
        GvmConfig {
            serial_flush: true,
            ..Self::new(ntask)
        }
    }

    /// A fault-tolerant instance with default recovery timeouts.
    pub fn fault_tolerant(ntask: usize) -> Self {
        GvmConfig {
            fault_tolerance: Some(FtConfig::default()),
            ..Self::new(ntask)
        }
    }

    /// `self` with per-rank device-memory quotas (enables quota
    /// accounting and admission enforcement).
    pub fn with_quotas(self, quotas: Vec<MemQuota>) -> Self {
        GvmConfig {
            quotas: Some(quotas),
            ..self
        }
    }

    /// `self` with demand-swap oversubscription enabled.
    pub fn with_swap(self) -> Self {
        GvmConfig { swap: true, ..self }
    }

    /// The quota governing `rank` (unlimited when none was configured).
    pub fn quota_for(&self, rank: usize) -> MemQuota {
        self.quotas
            .as_ref()
            .and_then(|q| q.get(rank))
            .copied()
            .unwrap_or(MemQuota::Unlimited)
    }

    /// True when any configured quota is finite — the trigger for lazy
    /// first-`SND` device allocation in a fault-free GVM.
    pub fn has_finite_quota(&self) -> bool {
        self.quotas
            .as_ref()
            .is_some_and(|q| q.iter().any(|m| !m.is_unlimited()))
    }
}

/// Counters describing what the GVM did (virtualization-overhead audit).
#[derive(Debug, Clone, Default)]
pub struct GvmStats {
    /// `SND` staging copies performed (shm → pinned).
    pub snd_copies: u64,
    /// `RCV` copies performed (pinned → shm).
    pub rcv_copies: u64,
    /// Total simulated time the GVM spent in staging memcpys.
    pub copy_time: SimDuration,
    /// `STR` barrier flushes performed.
    pub flushes: u64,
    /// Total simulated time spent submitting stream work at flushes.
    pub submit_time: SimDuration,
    /// `STP` queries answered with `WAIT`.
    pub stp_waits: u64,
    /// Ranks evicted by the fault-tolerance layer (timeout or `NAK`).
    pub evictions: u64,
    /// Requests answered with `NAK`.
    pub naks: u64,
    /// Duplicate requests answered from the recorded response (or
    /// silently ignored while the original is still barriered).
    pub dedup_hits: u64,
    /// Flushes that covered a strict subset of the then-active ranks
    /// (partial policies only; always 0 under `JointFlush`).
    pub partial_flushes: u64,
    /// Largest `STR` backlog observed when a new `STR` arrived.
    pub queue_depth_max: u64,
    /// Sum of the `STR` backlog over all arrivals (with
    /// [`GvmStats::queue_depth_samples`], yields the mean depth).
    pub queue_depth_sum: u64,
    /// Number of `STR` arrivals sampled into the queue-depth counters.
    pub queue_depth_samples: u64,
    /// Total simulated time between the first `STR` of each batch window
    /// and the dispatch that drained it — the queueing delay the policy
    /// imposed while the GPU could have been running.
    pub idle_gap: SimDuration,
    /// Staging-pool acquires served from a free list.
    pub pool_hits: u64,
    /// Staging-pool acquires that allocated a fresh pinned buffer.
    pub pool_misses: u64,
    /// Peak pinned bytes simultaneously leased from the staging pool.
    pub pool_high_water_bytes: u64,
    /// Device allocations served from the allocation cache (fault-tolerant
    /// GVMs only; always 0 otherwise).
    pub devcache_hits: u64,
    /// Device-allocation cache lookups that fell through to `cudaMalloc`.
    pub devcache_misses: u64,
    /// Payload transfers that were split into pipelined chunks.
    pub chunked_transfers: u64,
    /// Individual chunk copies submitted for those transfers.
    pub chunks_submitted: u64,
    /// `SND`s served as steady-state prefetches: next round's input staged
    /// into the double buffer while the current round still computed.
    pub steady_prefetches: u64,
    /// Pinned buffers released by the staging pool's high-water shrink.
    pub pool_released_buffers: u64,
    /// Pinned bytes released by the staging pool's high-water shrink.
    pub pool_released_bytes: u64,
    /// Staging-pool lease-cap overshoots by the GVM's non-blocking
    /// acquires (the serve loop never blocks against its own recycles).
    pub pool_over_cap: u64,
    /// Acquires that blocked on the lease cap (client-side users of the
    /// pool; always 0 for the GVM's own acquires).
    pub pool_backpressure_waits: u64,
    /// Admissions refused because the session's device-memory demand
    /// exceeded its quota (`OverQuota` NAKs; a subset of `naks`).
    pub quota_naks: u64,
    /// Idle parked working sets demand-swapped out to pinned host staging
    /// to make room for another admission.
    pub swap_outs: u64,
    /// Swapped working sets restored to device memory on next touch.
    pub swap_ins: u64,
    /// Bytes moved device→host by swap-outs.
    pub swapped_out_bytes: u64,
    /// Bytes moved host→device by swap-ins.
    pub swapped_in_bytes: u64,
    /// Fused DMA submissions issued by the coalescing flush path (each
    /// covers ≥ 2 ranks' transfers in one engine sweep).
    pub fused_dma_groups: u64,
    /// Individual rank transfers riding inside those fused submissions.
    pub fused_dma_subs: u64,
    /// Batched kernel-launch waves submitted (one launch-overhead charge
    /// covering every co-flushed rank's kernels for that iteration).
    pub batched_launch_waves: u64,
    /// Kernel launches carried by those batched waves.
    pub batched_launches: u64,
    /// All DMA submissions made by the flush path (fused or not) — the
    /// denominator of [`fused_dma_ratio`](Self::fused_dma_ratio).
    pub flush_dma_ops: u64,
}

impl GvmStats {
    /// Mean `STR` backlog at arrival (0.0 if no `STR` was sampled).
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Accumulate another instance's counters into this one (the cluster
    /// front-end merges all per-(device, wave) GVMs into one audit).
    /// Counters and durations add; high-water marks take the max.
    pub fn merge(&mut self, other: &GvmStats) {
        self.snd_copies += other.snd_copies;
        self.rcv_copies += other.rcv_copies;
        self.copy_time += other.copy_time;
        self.flushes += other.flushes;
        self.submit_time += other.submit_time;
        self.stp_waits += other.stp_waits;
        self.evictions += other.evictions;
        self.naks += other.naks;
        self.dedup_hits += other.dedup_hits;
        self.partial_flushes += other.partial_flushes;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.queue_depth_sum += other.queue_depth_sum;
        self.queue_depth_samples += other.queue_depth_samples;
        self.idle_gap += other.idle_gap;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_high_water_bytes = self.pool_high_water_bytes.max(other.pool_high_water_bytes);
        self.devcache_hits += other.devcache_hits;
        self.devcache_misses += other.devcache_misses;
        self.chunked_transfers += other.chunked_transfers;
        self.chunks_submitted += other.chunks_submitted;
        self.steady_prefetches += other.steady_prefetches;
        self.pool_released_buffers += other.pool_released_buffers;
        self.pool_released_bytes += other.pool_released_bytes;
        self.pool_over_cap += other.pool_over_cap;
        self.pool_backpressure_waits += other.pool_backpressure_waits;
        self.quota_naks += other.quota_naks;
        self.swap_outs += other.swap_outs;
        self.swap_ins += other.swap_ins;
        self.swapped_out_bytes += other.swapped_out_bytes;
        self.swapped_in_bytes += other.swapped_in_bytes;
        self.fused_dma_groups += other.fused_dma_groups;
        self.fused_dma_subs += other.fused_dma_subs;
        self.batched_launch_waves += other.batched_launch_waves;
        self.batched_launches += other.batched_launches;
        self.flush_dma_ops += other.flush_dma_ops;
    }

    /// Fraction of flush-path DMA submissions that rode in a fused group
    /// (0.0 when the flush path moved nothing).
    pub fn fused_dma_ratio(&self) -> f64 {
        if self.flush_dma_ops == 0 {
            0.0
        } else {
            self.fused_dma_subs as f64 / self.flush_dma_ops as f64
        }
    }

    /// Fraction of staging-pool acquires served without allocating
    /// (0.0 if the pool was never used).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Lifecycle of one rank inside the serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Serving normally.
    Active,
    /// Forcibly removed by the fault-tolerance layer; resources reclaimed.
    Evicted,
    /// Sent `RLS`.
    Released,
}

/// The rank's device-side allocation (held from boot in the fault-free
/// GVM; from first `SND` in the fault-tolerant one).
struct RankGpuAlloc {
    dev_base: DevicePtr,
    kernels: Vec<gv_gpu::KernelDesc>,
}

/// The GVM's buffer-lifecycle state: staging pool, device-allocation
/// cache, pipeline config, the adaptive chunk chooser, and the
/// transfer-group id counter.
struct MemLayer {
    mem: MemConfig,
    pool: StagingPool,
    devcache: DeviceAllocCache,
    chooser: AdaptiveChooser,
    /// Reusable span scratch for the per-round staging/flush paths
    /// ([`plan_scratch`](Self::plan_scratch)): steady-state rounds plan
    /// their transfers without allocating.
    spans: Vec<gv_mem::Span>,
    /// Reusable ACK-order scratch for `flush_group`.
    ack: Vec<usize>,
    /// Coalescing only: host address one past the end of the most recent
    /// input-lease acquisition, used as the placement hint for the next
    /// one so co-flushed ranks' staging leases reconstitute adjacency
    /// even when served from recycled (LIFO-shuffled) free lists. `None`
    /// when coalescing is off — hinted acquires can reorder free lists,
    /// and the off path must stay bit-identical to the pre-coalescing
    /// schedule.
    chain_next: Option<u64>,
}

impl MemLayer {
    /// Choose a chunk count for `payload`, allocate a transfer-group id,
    /// and commit the plan to the analysis stream (so the staging checker
    /// holds the transfer to exactly that tiling); returns the id and the
    /// spans. Callers must stage/record every returned span.
    fn plan(
        &mut self,
        tracer: &gv_sim::Tracer,
        rank: usize,
        payload: u64,
    ) -> (u64, Vec<gv_mem::Span>) {
        let k = self.chooser.choose(payload, &self.mem.pipeline);
        self.plan_k(tracer, rank, payload, k)
    }

    /// [`plan`](Self::plan) with a caller-forced chunk count (the
    /// first-round-only ablation pins steady-state rounds to `k = 1`).
    fn plan_k(
        &mut self,
        tracer: &gv_sim::Tracer,
        rank: usize,
        payload: u64,
        k: u64,
    ) -> (u64, Vec<gv_mem::Span>) {
        let spans = PipelineConfig::plan_exact(payload, k);
        // Tracer-global id: co-resident GVMs share one analysis stream.
        let xfer = tracer.alloc_xfer_id();
        if payload > 0 {
            gv_mem::record_plan(
                tracer,
                rank,
                xfer,
                payload,
                spans.len() as u64,
                self.mem.pipeline.chunks.max(1) as u64,
                self.mem.pipeline.adaptive,
            );
        }
        (xfer, spans)
    }

    /// [`plan`](Self::plan) into the reusable scratch (`self.spans`) —
    /// the allocation-free variant the per-round hot paths use. Produces
    /// exactly the spans and analysis records `plan` would.
    fn plan_scratch(&mut self, tracer: &gv_sim::Tracer, rank: usize, payload: u64) -> u64 {
        let k = self.chooser.choose(payload, &self.mem.pipeline);
        PipelineConfig::plan_exact_into(payload, k, &mut self.spans);
        let xfer = tracer.alloc_xfer_id();
        if payload > 0 {
            gv_mem::record_plan(
                tracer,
                rank,
                xfer,
                payload,
                self.spans.len() as u64,
                self.mem.pipeline.chunks.max(1) as u64,
                self.mem.pipeline.adaptive,
            );
        }
        xfer
    }
}

struct RankResources {
    shm: SharedMem,
    resp: MessageQueue<Response>,
    /// Index of this rank's device/context (multi-GPU nodes round-robin).
    dev_idx: usize,
    stream: gv_gpu::StreamId,
    gpu: Option<RankGpuAlloc>,
    /// Pooled pinned staging lease for the current round's input payload
    /// (acquired at `SND`, recycled at `RCV`).
    pinned_in: Option<StagingLease>,
    /// Pooled pinned staging lease for the current round's output payload
    /// (acquired at flush, recycled at `RCV`).
    pinned_out: Option<StagingLease>,
    /// Chunked pipelining pre-issued iteration 0's H2D copies at `SND`;
    /// the flush must not submit that copy again.
    h2d_preissued: bool,
    /// Steady-state double buffer: next round's input lease, staged by a
    /// prefetched `SND` while the current round is still on the device.
    /// Promoted to `pinned_in` at `RCV`.
    pinned_in_next: Option<StagingLease>,
    /// The prefetched `SND` already pre-issued next round's H2D copies
    /// (behind the current round's work on the same in-order stream).
    h2d_preissued_next: bool,
    /// Tail of the stream at the end of this rank's last flush. Steady
    /// `STP` polls this instead of the raw stream tail, which may already
    /// include next round's pre-issued H2D.
    round_tail: Option<gv_gpu::CommandHandle>,
    /// NUMA node of this rank's staging leases (from its core pinning).
    numa: usize,
    /// Zero-copy transport: the session-lifetime pinned lease whose bytes
    /// *are* the rank's shm segment (leased at boot, recycled at `RLS`).
    /// `None` on the staged-copy path.
    zc_lease: Option<StagingLease>,
    /// The descriptor granted to the client at `REQ` `ACK` (what a valid
    /// `SND` must present back). Cleared when the lease is recycled.
    zc_desc: Option<StagingDescriptor>,
    /// Completed `RCV` rounds this session (drives the first-round-only
    /// ablation schedule).
    rounds_done: u32,
    task: GpuTask,
    state: RankState,
    /// Device bytes currently charged against this rank's quota (0 when
    /// quota accounting is off).
    charged: u64,
    /// Highest request sequence number seen from this rank (0 = none).
    last_seq: u64,
    /// Response recorded for `last_seq`, for idempotent retries. `None`
    /// while the request is still barriered (`STR` awaiting flush).
    last_resp: Option<ResponseKind>,
}

/// Handle returned by [`Gvm::install`]: everything a client process needs
/// to connect, plus lifecycle gates for the harness.
#[derive(Clone)]
pub struct GvmHandle {
    /// Queue/segment naming.
    pub endpoints: Endpoints,
    /// Configuration (barrier width, poll backoff).
    pub config: Arc<GvmConfig>,
    /// Shared-memory namespace for this node.
    pub shm: ShmRegistry,
    /// Request-queue namespace.
    pub req_mq: MqRegistry<Request>,
    /// Response-queue namespace.
    pub resp_mq: MqRegistry<Response>,
    /// Opens once the GVM finished initializing all virtual resources.
    pub ready: Gate,
    /// Opens once every rank has sent `RLS`.
    pub done: Gate,
    /// Per-rank task descriptions (clients read their input sizes here).
    pub tasks: Arc<Vec<GpuTask>>,
    /// Post-run statistics.
    pub stats: Arc<Mutex<GvmStats>>,
}

impl GvmHandle {
    /// The task assigned to `rank`.
    pub fn task(&self, rank: usize) -> &GpuTask {
        &self.tasks[rank]
    }
}

/// The GPU Virtualization Manager installer.
pub struct Gvm;

impl Gvm {
    /// Spawn a GVM process into `sim` serving `tasks[r]` for rank `r`.
    /// The GVM boots (context creation, resource setup) before opening
    /// `ready`; clients must wait on it.
    pub fn install(
        sim: &mut Simulation,
        node: &Node,
        cuda: &CudaDevice,
        config: GvmConfig,
        tasks: Vec<GpuTask>,
    ) -> GvmHandle {
        Self::install_multi(sim, node, std::slice::from_ref(cuda), config, tasks)
    }

    /// Multi-GPU variant: the GVM owns one context per device and assigns
    /// rank `r` to device `r % devices.len()` (the paper's architecture has
    /// one GPU per node; this extension shows the layer generalizes to
    /// fatter nodes without touching the client protocol).
    pub fn install_multi(
        sim: &mut Simulation,
        node: &Node,
        cudas: &[CudaDevice],
        config: GvmConfig,
        tasks: Vec<GpuTask>,
    ) -> GvmHandle {
        let handle = Self::prepare(node, config, tasks);
        Self::spawn_prepared(sim, &handle, cudas, node);
        handle
    }

    /// Construct a [`GvmHandle`] (registries, gates, task table) without
    /// spawning the manager process. Clients may connect to a prepared
    /// handle immediately — they block on `ready` until some process later
    /// boots the manager via [`Gvm::spawn_prepared`] or
    /// [`Gvm::spawn_prepared_from`]. The cluster front-end uses this to
    /// pre-wire every admission wave at install time and boot later waves
    /// only when their predecessors drain.
    pub fn prepare(node: &Node, config: GvmConfig, tasks: Vec<GpuTask>) -> GvmHandle {
        assert_eq!(tasks.len(), config.ntask, "one task per SPMD rank required");
        assert!(config.ntask >= 1);
        let endpoints = Endpoints::new(&config.name);
        let shm_reg = ShmRegistry::new(node.config());
        let req_reg: MqRegistry<Request> = MqRegistry::new(node.config());
        let resp_reg: MqRegistry<Response> = MqRegistry::new(node.config());
        GvmHandle {
            endpoints: endpoints.clone(),
            config: Arc::new(config),
            shm: shm_reg,
            req_mq: req_reg,
            resp_mq: resp_reg,
            ready: Gate::new(),
            done: Gate::new(),
            tasks: Arc::new(tasks),
            stats: Arc::new(Mutex::new(GvmStats::default())),
        }
    }

    /// Boot the manager process for a [prepared](Gvm::prepare) handle from
    /// the simulation's top level.
    pub fn spawn_prepared(
        sim: &mut Simulation,
        handle: &GvmHandle,
        cudas: &[CudaDevice],
        node: &Node,
    ) {
        assert!(!cudas.is_empty(), "at least one device required");
        let h = handle.clone();
        let cudas = cudas.to_vec();
        let node = node.clone();
        sim.spawn(&h.endpoints.gvm.clone(), move |ctx| {
            gvm_main(ctx, h, cudas, node);
        });
    }

    /// Boot the manager process for a [prepared](Gvm::prepare) handle from
    /// within a running process (e.g. a cluster wave controller releasing
    /// the next admission wave once the previous one drains).
    pub fn spawn_prepared_from(ctx: &Ctx, handle: &GvmHandle, cudas: &[CudaDevice], node: &Node) {
        assert!(!cudas.is_empty(), "at least one device required");
        let h = handle.clone();
        let cudas = cudas.to_vec();
        let node = node.clone();
        ctx.spawn(&h.endpoints.gvm.clone(), move |ctx| {
            gvm_main(ctx, h, cudas, node);
        });
    }
}

fn gvm_main(ctx: &mut Ctx, h: GvmHandle, cudas: Vec<CudaDevice>, node: Node) {
    let cfg = &h.config;
    let endpoints = &h.endpoints;
    let ft = cfg.fault_tolerance.clone();

    // --- Initialization (paper Fig. 8, left column top) -----------------
    // "Gets the GPU device / Initializes Context": one charged context per
    // device (a single-GPU node pays exactly one creation).
    let contexts: Vec<gv_cuda::CudaContext> = cudas
        .iter()
        .enumerate()
        .map(|(i, cuda)| cuda.create_context(ctx, &format!("{}-ctx{i}", endpoints.gvm)))
        .collect();
    let req_q = h
        .req_mq
        .create(&endpoints.request_queue(), cfg.req_queue_capacity)
        .expect("request queue name free");

    // Fault-free GVMs pre-allocate at boot (Fig. 8); the fault-tolerant
    // one overcommits and allocates at first SND so an OOM can be answered
    // with a NAK instead of a boot-time panic. A finite quota forces the
    // lazy path too (an over-quota demand must become an OverQuota NAK at
    // admission, never a silent boot-time grab), as does swap: an
    // oversubscribed session set cannot all be resident at boot.
    let lazy_alloc = ft.is_some() || cfg.has_finite_quota() || cfg.swap;

    // One lease window serves both directions on the zero-copy path, so
    // it cannot coexist with the steady-state double buffer (which needs
    // next round's input alive while this round's output drains).
    assert!(
        !(cfg.mem.zero_copy && cfg.mem.pipeline.steady),
        "zero_copy is incompatible with steady double-buffering"
    );

    // The buffer-lifecycle layer: one staging pool and one device
    // allocation cache per GVM instance, plus the running transfer-group
    // counter that ties chunk records together in analysis traces. The
    // adaptive chunk chooser is seeded from the models this run already
    // uses — staging rate from the node's memcpy bandwidth, transfer rate
    // from the device's pinned H2D bandwidth, per-chunk overhead from the
    // fixed latencies both sides charge per span — and refined online by
    // an EWMA of measured staging latency. Built before the rank loop
    // because zero-copy boot leases each rank's segment from the pool.
    let dev_cfg = cudas[0].device().config();
    let chooser = AdaptiveChooser::new(
        1.0 / node.config().memcpy_gbps,
        1.0e9 / dev_cfg.h2d_bytes_per_sec(true),
        (node.config().shm_latency + dev_cfg.dma_latency).as_nanos() as f64,
    );
    let mut ml = MemLayer {
        mem: cfg.mem,
        pool: StagingPool::with_config(cfg.mem.pool),
        devcache: DeviceAllocCache::new(),
        chooser,
        spans: Vec::new(),
        ack: Vec::new(),
        chain_next: None,
    };

    let mut ranks: Vec<RankResources> = Vec::with_capacity(cfg.ntask);
    for r in 0..cfg.ntask {
        let task = h.tasks[r].clone();
        // Shaped multi-round sessions size the segment (and the zero-copy
        // lease) for their largest round.
        let shm_size = task.max_bytes_in().max(task.bytes_out).max(1);
        // Ranks map onto NUMA nodes by their core pinning so a rank's
        // leases come from free lists local to its socket.
        let cores = node.config().cores.max(1);
        let numa = (r % cores) * cfg.mem.pool.numa_nodes.max(1) / cores;
        // Zero-copy: the rank's segment is not a private byte array the
        // GVM copies out of — it is a *view of a pinned pool lease*. The
        // client's SND write lands directly in pinned memory and H2D
        // issues straight from it; the staged-copy path keeps the plain
        // segment.
        let (shm, zc_lease) = if cfg.mem.zero_copy {
            let lease = ml
                .pool
                .acquire_on(ctx.tracer(), shm_size, task.is_functional(), numa);
            let shm = h
                .shm
                .create_backed(
                    &endpoints.shm(r),
                    shm_size,
                    Arc::new(LeaseBacking::new(&lease)),
                )
                .expect("shm name free");
            (shm, Some(lease))
        } else {
            let shm = h
                .shm
                .create(&endpoints.shm(r), shm_size)
                .expect("shm name free");
            (shm, None)
        };
        let resp = h
            .resp_mq
            .create(&endpoints.response_queue(r), None)
            .expect("response queue name free");
        let dev_idx = r % contexts.len();
        let cc = &contexts[dev_idx];
        let stream = cc.stream_create();
        let gpu = if !lazy_alloc {
            let dev_base = cc
                .malloc(task.device_bytes.max(1))
                .expect("GVM device allocation");
            // "Prepares the kernels to be executed when initialized".
            let kernels = task.bind_kernels(dev_base);
            Some(RankGpuAlloc { dev_base, kernels })
        } else {
            None
        };
        // With quota accounting on, an eager boot allocation is charged
        // (and its quota declared) right here; the lazy path declares at
        // REQ and charges at first SND.
        let mut charged = 0u64;
        if cfg.quotas.is_some() && gpu.is_some() {
            let bytes = task.device_bytes.max(1);
            let quota = cfg.quota_for(r);
            let cap = cudas[dev_idx].device().with_memory(|m| m.capacity());
            ctx.tracer()
                .record_analysis(gv_sim::AnalysisRecord::QuotaSet {
                    time: ctx.now(),
                    gvm: endpoints.gvm.clone(),
                    rank: r,
                    quota: quota.resolve(cap).unwrap_or(0),
                    demand: bytes,
                });
            charged = bytes;
            cudas[dev_idx].device().with_memory(|m| m.charge(bytes));
            ctx.tracer()
                .record_analysis(gv_sim::AnalysisRecord::QuotaCharge {
                    time: ctx.now(),
                    gvm: endpoints.gvm.clone(),
                    rank: r,
                    bytes,
                    charged,
                });
        }
        // Pinned staging is leased per round from the shared pool (at SND
        // for input, at flush for output) instead of allocated per rank
        // here — recycled leases make steady-state rounds allocation-free.
        ranks.push(RankResources {
            shm,
            resp,
            dev_idx,
            stream,
            gpu,
            pinned_in: None,
            pinned_out: None,
            h2d_preissued: false,
            pinned_in_next: None,
            h2d_preissued_next: false,
            round_tail: None,
            numa,
            zc_lease,
            zc_desc: None,
            rounds_done: 0,
            task,
            state: RankState::Active,
            charged,
            last_seq: 0,
            last_resp: None,
        });
    }
    // The dispatch policy. Per-rank service estimates feed shortest-job-
    // first ordering; the other policies ignore them.
    let costs_ms: Vec<f64> = (0..cfg.ntask)
        .map(|r| {
            sched::estimate_cost_ms(
                &h.tasks[r],
                cudas[r % cudas.len()].device().config(),
                node.config(),
            )
        })
        .collect();
    let mut scheduler: Box<dyn Scheduler> = cfg.scheduler.build(costs_ms);
    ctx.tracer()
        .record_analysis(gv_sim::AnalysisRecord::ProtoSched {
            time: ctx.now(),
            gvm: h.endpoints.gvm.clone(),
            policy: scheduler.name().to_string(),
            partial: scheduler.partial_flush(),
        });
    h.ready.open(ctx);

    // --- Serve loop ------------------------------------------------------
    let mut str_waiting: Vec<usize> = Vec::new();
    // Absolute deadline for the current barrier round, fixed when the
    // first STR arrives. Retried/duplicated requests received during the
    // stall must NOT push it out, or steady client retries could keep a
    // dead barrier alive forever.
    let mut barrier_deadline: Option<gv_sim::SimTime> = None;
    // When the oldest pending STR arrived — anchors the scheduler's batch
    // timeout and the idle-gap metric.
    let mut batch_start: Option<gv_sim::SimTime> = None;
    let mut finished = 0usize; // released + evicted
    while finished < cfg.ntask {
        if str_waiting.is_empty() {
            barrier_deadline = None;
            batch_start = None;
        }
        // The scheduler's own deadline (AdaptiveBatch timer), independent
        // of fault tolerance: it fires a dispatch, never an eviction.
        let sched_deadline = match (scheduler.batch_timeout(), batch_start) {
            (Some(t), Some(b)) => Some(b + t),
            _ => None,
        };
        let req = if ft.is_some() || sched_deadline.is_some() {
            let ft_deadline = ft.as_ref().map(|ft| match barrier_deadline {
                Some(d) => d,
                None => ctx.now() + ft.idle_timeout,
            });
            let deadline = match (ft_deadline, sched_deadline) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("timed receive requires a deadline"),
            };
            match req_q.recv_timeout(ctx, deadline.duration_since(ctx.now())) {
                RecvTimeout::Msg(req) => req,
                RecvTimeout::Closed => break,
                RecvTimeout::TimedOut => {
                    let sched_fired =
                        sched_deadline.is_some_and(|sd| ft_deadline.is_none_or(|fd| sd <= fd));
                    if sched_fired {
                        // Batch timer expired: flush whatever is pending,
                        // nobody is presumed dead.
                        ctx.tracer().instant(ctx.now(), "sched", "batch-timeout");
                        let active = active_count(&ranks);
                        let groups = scheduler.on_deadline(&str_waiting, active);
                        dispatch_groups(
                            ctx,
                            &h,
                            &contexts,
                            &mut ranks,
                            &mut str_waiting,
                            &mut batch_start,
                            &mut ml,
                            groups,
                        );
                    } else if str_waiting.is_empty() {
                        // Nothing barriered and nobody talking: the
                        // remaining active ranks are gone. Evict them all.
                        for r in 0..ranks.len() {
                            if ranks[r].state == RankState::Active {
                                evict(
                                    ctx,
                                    &h,
                                    &cudas,
                                    &contexts,
                                    &mut ranks,
                                    &mut str_waiting,
                                    &mut ml,
                                    r,
                                );
                                finished += 1;
                            }
                        }
                    } else {
                        // Barrier stalled: evict the stragglers; the
                        // policy re-arms at the reduced width and flushes
                        // so survivors complete.
                        for r in 0..ranks.len() {
                            if ranks[r].state == RankState::Active && !str_waiting.contains(&r) {
                                evict(
                                    ctx,
                                    &h,
                                    &cudas,
                                    &contexts,
                                    &mut ranks,
                                    &mut str_waiting,
                                    &mut ml,
                                    r,
                                );
                                finished += 1;
                            }
                        }
                        ctx.tracer()
                            .fault(ctx.now(), format!("barrier-degrade:{}", str_waiting.len()));
                        let active = active_count(&ranks);
                        let groups = scheduler.on_deadline(&str_waiting, active);
                        dispatch_groups(
                            ctx,
                            &h,
                            &contexts,
                            &mut ranks,
                            &mut str_waiting,
                            &mut batch_start,
                            &mut ml,
                            groups,
                        );
                    }
                    continue;
                }
            }
        } else {
            let Some(req) = req_q.recv(ctx) else { break };
            req
        };
        let r = req.rank;
        // Record construction clones the instance name; skip it when no
        // analysis sink is attached so the request loop stays
        // allocation-free (the tracer drops gated records anyway).
        if ctx.tracer().analysis_enabled() {
            ctx.tracer().record_analysis(gv_sim::AnalysisRecord::Proto {
                time: ctx.now(),
                gvm: h.endpoints.gvm.clone(),
                rank: r,
                kind: req.kind.label(),
                seq: req.seq,
            });
        }

        // Idempotent retry handling: a sequence number at or below the
        // last one served is a duplicate (client retry after a lost
        // response, or a duplicated request message).
        if req.seq != 0 && req.seq <= ranks[r].last_seq {
            h.stats.lock().dedup_hits += 1;
            if req.seq == ranks[r].last_seq {
                if let Some(kind) = ranks[r].last_resp {
                    // Replay carries the current grant so a client whose
                    // REQ ACK was lost still receives its descriptor.
                    let _ = ranks[r].resp.send(
                        ctx,
                        Response {
                            seq: req.seq,
                            kind,
                            desc: ranks[r].zc_desc,
                        },
                    );
                }
                // else: the original is still barriered in str_waiting —
                // the ACK will go out at flush; never barrier twice.
            }
            continue;
        }
        ranks[r].last_seq = req.seq;
        ranks[r].last_resp = None;

        // An evicted (or already-released) rank gets a NAK so a retrying
        // client stops instead of timing out forever.
        if ranks[r].state != RankState::Active {
            h.stats.lock().naks += 1;
            let _ = ranks[r].resp.send(ctx, Response::nak(req.seq));
            ranks[r].last_resp = Some(ResponseKind::Nak(NakReason::Evicted));
            continue;
        }

        match req.kind {
            RequestKind::Req => {
                // "Provides Virtual and GPU Resource" — pre-created at init
                // (fault-free) or deferred to SND (fault-tolerant). On the
                // lazy path the quota is declared and enforced here: a
                // session whose declared demand cannot ever fit its quota
                // is refused at admission, not after staging work.
                if cfg.quotas.is_some() && lazy_alloc {
                    let demand = ranks[r].task.device_bytes.max(1);
                    let dev_idx = ranks[r].dev_idx;
                    let cap = cudas[dev_idx].device().with_memory(|m| m.capacity());
                    let quota = cfg.quota_for(r);
                    ctx.tracer()
                        .record_analysis(gv_sim::AnalysisRecord::QuotaSet {
                            time: ctx.now(),
                            gvm: h.endpoints.gvm.clone(),
                            rank: r,
                            quota: quota.resolve(cap).unwrap_or(0),
                            demand,
                        });
                    if !quota.admits(demand, cap) {
                        ctx.tracer().fault(ctx.now(), format!("quota-nak:rank{r}"));
                        {
                            let mut stats = h.stats.lock();
                            stats.naks += 1;
                            stats.quota_naks += 1;
                        }
                        send_recorded(
                            ctx,
                            &mut ranks[r],
                            Response::nak_reason(req.seq, NakReason::OverQuota),
                        );
                        evict(
                            ctx,
                            &h,
                            &cudas,
                            &contexts,
                            &mut ranks,
                            &mut str_waiting,
                            &mut ml,
                            r,
                        );
                        finished += 1;
                        let active = active_count(&ranks);
                        let groups = scheduler.on_membership(&str_waiting, active);
                        dispatch_groups(
                            ctx,
                            &h,
                            &contexts,
                            &mut ranks,
                            &mut str_waiting,
                            &mut batch_start,
                            &mut ml,
                            groups,
                        );
                        continue;
                    }
                }
                // Zero-copy: the REQ ACK carries the staging descriptor —
                // the client's window into this rank's lease-backed
                // segment. The generation stamp is what later SNDs are
                // validated against.
                let mut resp = Response::ack(req.seq);
                if cfg.mem.zero_copy {
                    let rank = &mut ranks[r];
                    let lease = rank
                        .zc_lease
                        .as_ref()
                        .expect("zero-copy rank leased at boot");
                    let len = rank.task.max_bytes_in().max(rank.task.bytes_out).max(1);
                    let desc = lease.descriptor(0, len);
                    rank.zc_desc = Some(desc);
                    if ctx.tracer().analysis_enabled() {
                        ctx.tracer()
                            .record_analysis(gv_sim::AnalysisRecord::DescGrant {
                                time: ctx.now(),
                                gvm: h.endpoints.gvm.clone(),
                                rank: r,
                                segment: endpoints.shm(r),
                                buf: desc.segment,
                                generation: desc.generation,
                                len: desc.len,
                            });
                    }
                    resp = resp.with_desc(desc);
                }
                send_recorded(ctx, &mut ranks[r], resp);
            }
            RequestKind::Snd => {
                // Lazy GVMs (fault-tolerant or finite-quota) allocate
                // device memory here; an OOM becomes a NAK + eviction
                // instead of a wedge. Allocations parked by earlier
                // evictions are reused before touching the device
                // allocator, and with swap enabled a miss may evict idle
                // parked working sets to host staging to make room.
                if lazy_alloc && ranks[r].gpu.is_none() {
                    let dev_bytes = ranks[r].task.device_bytes.max(1);
                    let dev_idx = ranks[r].dev_idx;
                    let stream = ranks[r].stream;
                    let numa = ranks[r].numa;
                    let functional = ranks[r].task.is_functional();
                    let base = match ml.devcache.take(dev_idx, dev_bytes) {
                        Some(CachedAlloc::Resident(ptr)) => {
                            // A recycled allocation must look fresh to a
                            // functional task: untouched device memory
                            // reads as zeroes, so restore that. The
                            // restore goes through the same chunked
                            // planner as payload transfers, so the
                            // staging checker audits its tiling too.
                            if functional {
                                let (xfer, spans) = ml.plan(ctx.tracer(), r, dev_bytes);
                                let zeros = vec![0u8; dev_bytes as usize];
                                for span in &spans {
                                    cudas[dev_idx]
                                        .device()
                                        .with_memory(|m| {
                                            m.write_bytes(
                                                ptr.add(span.offset),
                                                &zeros[span.offset as usize
                                                    ..(span.offset + span.len) as usize],
                                            )
                                        })
                                        .expect("zero recycled device allocation");
                                    gv_mem::record_chunk(
                                        ctx.tracer(),
                                        cudas[dev_idx].device().tracer_ordinal(),
                                        r,
                                        xfer,
                                        true,
                                        *span,
                                        dev_bytes,
                                        0,
                                        String::new(),
                                    );
                                }
                            }
                            Ok(ptr)
                        }
                        Some(CachedAlloc::Swapped(lease)) => {
                            // Re-admit a swapped-out working set: allocate
                            // device memory (demand-swapping others if
                            // needed), restore the staged bytes through
                            // the chunked planner, and only then return
                            // the lease to the pool.
                            match alloc_with_swap(
                                ctx, &h, &cudas, &contexts, &mut ml, r, dev_idx, stream, numa,
                                dev_bytes,
                            ) {
                                Ok(ptr) => {
                                    let (xfer, spans) = ml.plan(ctx.tracer(), r, dev_bytes);
                                    for span in &spans {
                                        let cmd = contexts[dev_idx]
                                            .memcpy_h2d_async_at(
                                                ctx,
                                                stream,
                                                lease.buffer(),
                                                span.offset,
                                                ptr.add(span.offset),
                                                span.len,
                                            )
                                            .expect("swap-in H2D submit");
                                        gv_mem::record_chunk(
                                            ctx.tracer(),
                                            cudas[dev_idx].device().tracer_ordinal(),
                                            r,
                                            xfer,
                                            true,
                                            *span,
                                            dev_bytes,
                                            lease.id(),
                                            format!("cmd-{}", cmd.id),
                                        );
                                    }
                                    // Recycle only after the restore
                                    // copies completed (no use-after-
                                    // recycle on the staging buffer).
                                    contexts[dev_idx].stream_synchronize(ctx, stream);
                                    ctx.tracer()
                                        .record_analysis(gv_sim::AnalysisRecord::SwapIn {
                                            time: ctx.now(),
                                            gvm: h.endpoints.gvm.clone(),
                                            device: cudas[dev_idx].device().tracer_ordinal(),
                                            buf: lease.id(),
                                            bytes: dev_bytes,
                                        });
                                    {
                                        let mut stats = h.stats.lock();
                                        stats.swap_ins += 1;
                                        stats.swapped_in_bytes += dev_bytes;
                                    }
                                    ml.pool.recycle(ctx.tracer(), lease);
                                    // The restored bytes belonged to the
                                    // entry's previous owner; a functional
                                    // task needs fresh zeroes, same as the
                                    // resident-recycle path.
                                    if functional {
                                        let (zxfer, zspans) = ml.plan(ctx.tracer(), r, dev_bytes);
                                        let zeros = vec![0u8; dev_bytes as usize];
                                        for span in &zspans {
                                            cudas[dev_idx]
                                                .device()
                                                .with_memory(|m| {
                                                    m.write_bytes(
                                                        ptr.add(span.offset),
                                                        &zeros[span.offset as usize
                                                            ..(span.offset + span.len) as usize],
                                                    )
                                                })
                                                .expect("zero swapped-in allocation");
                                            gv_mem::record_chunk(
                                                ctx.tracer(),
                                                cudas[dev_idx].device().tracer_ordinal(),
                                                r,
                                                zxfer,
                                                true,
                                                *span,
                                                dev_bytes,
                                                0,
                                                String::new(),
                                            );
                                        }
                                    }
                                    Ok(ptr)
                                }
                                Err(e) => {
                                    // Park the working set back so its
                                    // bytes are not lost with the lease.
                                    ml.devcache
                                        .park_swapped(dev_idx, dev_bytes, lease, ctx.now());
                                    Err(e)
                                }
                            }
                        }
                        None => alloc_with_swap(
                            ctx, &h, &cudas, &contexts, &mut ml, r, dev_idx, stream, numa,
                            dev_bytes,
                        ),
                    };
                    match base {
                        Ok(dev_base) => {
                            let kernels = ranks[r].task.bind_kernels(dev_base);
                            ranks[r].gpu = Some(RankGpuAlloc { dev_base, kernels });
                            quota_charge(ctx, &h, &cudas, &mut ranks[r], r, dev_bytes);
                        }
                        Err(_) => {
                            ctx.tracer().fault(ctx.now(), format!("oom-nak:rank{r}"));
                            {
                                let mut stats = h.stats.lock();
                                stats.naks += 1;
                            }
                            send_recorded(
                                ctx,
                                &mut ranks[r],
                                Response::nak_reason(req.seq, NakReason::Oom),
                            );
                            evict(
                                ctx,
                                &h,
                                &cudas,
                                &contexts,
                                &mut ranks,
                                &mut str_waiting,
                                &mut ml,
                                r,
                            );
                            finished += 1;
                            let active = active_count(&ranks);
                            let groups = scheduler.on_membership(&str_waiting, active);
                            dispatch_groups(
                                ctx,
                                &h,
                                &contexts,
                                &mut ranks,
                                &mut str_waiting,
                                &mut batch_start,
                                &mut ml,
                                groups,
                            );
                            continue;
                        }
                    }
                }
                if cfg.mem.zero_copy {
                    // Zero-copy SND: the payload already sits in pinned
                    // memory (the client wrote it through the lease-backed
                    // segment), so there is no shm→pinned copy to perform
                    // — snd_copies/copy_time stay untouched. Validate the
                    // presented descriptor's generation first: a recycled
                    // lease means the window now aliases someone else's
                    // buffer and the SND must be refused.
                    let ok = req
                        .desc
                        .is_some_and(|d| ranks[r].zc_desc == Some(d) && ml.pool.validate(&d));
                    if ctx.tracer().analysis_enabled() {
                        let (buf, generation) = req
                            .desc
                            .map(|d| (d.segment, d.generation))
                            .unwrap_or((0, 0));
                        ctx.tracer()
                            .record_analysis(gv_sim::AnalysisRecord::DescUse {
                                time: ctx.now(),
                                gvm: h.endpoints.gvm.clone(),
                                rank: r,
                                buf,
                                generation,
                                ok,
                            });
                    }
                    if !ok {
                        ctx.tracer().fault(ctx.now(), format!("stale-desc:rank{r}"));
                        h.stats.lock().naks += 1;
                        send_recorded(
                            ctx,
                            &mut ranks[r],
                            Response::nak_reason(req.seq, NakReason::Stale),
                        );
                        continue;
                    }
                    let bytes = ranks[r].task.bytes_in_for_round(ranks[r].rounds_done);
                    if bytes > 0 {
                        // H2D issues straight from the lease; every span
                        // is handed to the copy engine now, ahead of the
                        // kernels on the same in-order stream, so the
                        // flush skips iteration 0's upload.
                        let xfer = ml.plan_scratch(ctx.tracer(), r, bytes);
                        let analysis = ctx.tracer().analysis_enabled();
                        let rank = &mut ranks[r];
                        let gpu = rank.gpu.as_ref().expect("SND after allocation");
                        let lease = rank.zc_lease.as_ref().expect("zero-copy lease");
                        for span in &ml.spans {
                            let cmd = contexts[rank.dev_idx]
                                .memcpy_h2d_async_at(
                                    ctx,
                                    rank.stream,
                                    lease.buffer(),
                                    span.offset,
                                    gpu.dev_base.add(span.offset),
                                    span.len,
                                )
                                .expect("GVM zero-copy H2D submit");
                            let label = if analysis {
                                format!("cmd-{}", cmd.id)
                            } else {
                                String::new()
                            };
                            gv_mem::record_chunk(
                                ctx.tracer(),
                                cudas[rank.dev_idx].device().tracer_ordinal(),
                                r,
                                xfer,
                                true,
                                *span,
                                bytes,
                                lease.id(),
                                label,
                            );
                        }
                        rank.h2d_preissued = true;
                        if ml.spans.len() > 1 {
                            let mut stats = h.stats.lock();
                            stats.chunked_transfers += 1;
                            stats.chunks_submitted += ml.spans.len() as u64;
                        }
                    }
                    send_recorded(ctx, &mut ranks[r], Response::ack(req.seq));
                    continue;
                }
                // "Copies Data from Virtual Shared Memory to Host Pinned
                // Memory" — performed by the GVM, charged to the GVM.
                // Payloads at or above the pipeline threshold are split
                // into chunks, each handed to the copy engine the moment
                // it is staged, so the H2D of chunk i overlaps the shm
                // staging of chunk i+1.
                let functional = ranks[r].task.is_functional();
                // First-round-only ablation: steady-state rounds fall
                // back to serial whole-payload staging with the H2D
                // deferred to flush (the pre-PR schedule the ROADMAP
                // documented; kept as the sweep baseline).
                let ablate = ml.mem.pipeline.first_round_only && ranks[r].rounds_done > 0;
                // Steady-state prefetch: a second SND arriving while
                // this rank's round is still on the device stages next
                // round's input into the double buffer and pre-issues
                // its H2D behind the in-flight work on the same
                // in-order stream — iteration overlap across rounds.
                let prefetch = ml.mem.pipeline.steady && !ablate && ranks[r].pinned_in.is_some();
                // A prefetched SND stages *next* round's input, so shaped
                // sessions re-plan the double buffer at next round's size
                // instead of falling back to serial.
                let bytes = ranks[r]
                    .task
                    .bytes_in_for_round(ranks[r].rounds_done + u32::from(prefetch));
                if bytes > 0 {
                    let t0 = ctx.now();
                    // Coalescing: chain this lease right after the last
                    // one handed out, so co-flushed ranks' staging leases
                    // sit adjacent and the flush planner can fuse them.
                    let hint = if ml.mem.coalesce.enabled {
                        ml.chain_next
                    } else {
                        None
                    };
                    let mut chain = ml.chain_next;
                    if prefetch {
                        if ranks[r].pinned_in_next.is_none() {
                            let numa = ranks[r].numa;
                            let lease =
                                ml.pool
                                    .acquire_at(ctx.tracer(), bytes, functional, numa, hint);
                            chain = Some(lease.place_addr() + lease.capacity());
                            ranks[r].pinned_in_next = Some(lease);
                        }
                    } else if ranks[r].pinned_in.is_none() {
                        let numa = ranks[r].numa;
                        let lease = ml
                            .pool
                            .acquire_at(ctx.tracer(), bytes, functional, numa, hint);
                        chain = Some(lease.place_addr() + lease.capacity());
                        ranks[r].pinned_in = Some(lease);
                    }
                    if ml.mem.coalesce.enabled {
                        ml.chain_next = chain;
                    }
                    let (xfer, spans) = if ablate {
                        ml.plan_k(ctx.tracer(), r, bytes, 1)
                    } else {
                        ml.plan(ctx.tracer(), r, bytes)
                    };
                    let chunked = spans.len() > 1;
                    let mut stage_ns = 0u64;
                    for span in &spans {
                        let rank = &mut ranks[r];
                        let lease = if prefetch {
                            rank.pinned_in_next.as_ref()
                        } else {
                            rank.pinned_in.as_ref()
                        }
                        .expect("pinned input leased above");
                        let s0 = ctx.now();
                        gv_mem::stage_span(ctx, &rank.shm, lease.buffer(), *span, true)
                            .expect("SND staging");
                        stage_ns += ctx.now().duration_since(s0).as_nanos();
                        // Chunked transfers hand every span to the copy
                        // engine as it is staged; prefetched rounds hand
                        // over even a single span (the whole point is
                        // getting the H2D in before the round boundary).
                        let label = if chunked || prefetch {
                            let gpu = rank.gpu.as_ref().expect("SND after allocation");
                            let cmd = contexts[rank.dev_idx]
                                .memcpy_h2d_async_at(
                                    ctx,
                                    rank.stream,
                                    lease.buffer(),
                                    span.offset,
                                    gpu.dev_base.add(span.offset),
                                    span.len,
                                )
                                .expect("GVM chunked H2D submit");
                            format!("cmd-{}", cmd.id)
                        } else {
                            String::new()
                        };
                        gv_mem::record_chunk(
                            ctx.tracer(),
                            cudas[rank.dev_idx].device().tracer_ordinal(),
                            r,
                            xfer,
                            true,
                            *span,
                            bytes,
                            lease.id(),
                            label,
                        );
                    }
                    // Feed the measured staging latency back into the
                    // adaptive model.
                    ml.chooser.observe_stage(bytes, stage_ns);
                    if prefetch {
                        ranks[r].h2d_preissued_next = true;
                    } else {
                        ranks[r].h2d_preissued = chunked;
                    }
                    let mut stats = h.stats.lock();
                    stats.snd_copies += 1;
                    stats.copy_time += ctx.now().duration_since(t0);
                    if prefetch {
                        stats.steady_prefetches += 1;
                    }
                    if chunked {
                        stats.chunked_transfers += 1;
                        stats.chunks_submitted += spans.len() as u64;
                    }
                }
                send_recorded(ctx, &mut ranks[r], Response::ack(req.seq));
            }
            RequestKind::Str => {
                // "Buffers the STR message … Barrier to synchronize STR
                // from all processes", then flush per the policy. The ACK
                // is recorded at flush time (last_resp stays None until
                // then, which is what makes retried STRs safe).
                str_waiting.push(r);
                batch_start.get_or_insert(ctx.now());
                if let Some(ft) = &ft {
                    barrier_deadline.get_or_insert(ctx.now() + ft.barrier_timeout);
                }
                {
                    let depth = str_waiting.len() as u64;
                    let mut stats = h.stats.lock();
                    stats.queue_depth_samples += 1;
                    stats.queue_depth_sum += depth;
                    stats.queue_depth_max = stats.queue_depth_max.max(depth);
                }
                ctx.tracer().instant(
                    ctx.now(),
                    "sched",
                    format!("queue-depth:{}", str_waiting.len()),
                );
                let active = active_count(&ranks);
                let groups = scheduler.on_str(&str_waiting, active);
                dispatch_groups(
                    ctx,
                    &h,
                    &contexts,
                    &mut ranks,
                    &mut str_waiting,
                    &mut batch_start,
                    &mut ml,
                    groups,
                );
            }
            RequestKind::Stp => {
                // "If status(stream)=0 sends WAIT, otherwise sends ACK".
                // In steady mode the stream tail may already include next
                // round's pre-issued H2D, so completion is judged at the
                // round boundary recorded at flush, not the raw tail.
                let done = match &ranks[r].round_tail {
                    Some(tail) => tail.is_done(),
                    None => contexts[ranks[r].dev_idx].stream_query(ranks[r].stream),
                };
                if !done {
                    h.stats.lock().stp_waits += 1;
                }
                let resp = if done {
                    Response::ack(req.seq)
                } else {
                    Response::wait(req.seq)
                };
                send_recorded(ctx, &mut ranks[r], resp);
            }
            RequestKind::Rcv => {
                // "Copies Result Data from Host Pinned Memory to Virtual
                // Shared Memory" — the same span-wise staging path as SND,
                // in the other direction. On the zero-copy path there is
                // nothing to move: the flush's final-iteration D2H already
                // landed the results in the lease that *is* the segment,
                // so the ACK alone tells the client to read them out
                // (rcv_copies stays untouched).
                let bytes = ranks[r].task.bytes_out;
                if bytes > 0 && !cfg.mem.zero_copy {
                    let t0 = ctx.now();
                    let rank = &mut ranks[r];
                    let lease = rank
                        .pinned_out
                        .as_ref()
                        .expect("RCV after flush leased pinned_out");
                    for span in ml.mem.pipeline.plan(bytes) {
                        gv_mem::stage_span(ctx, &rank.shm, lease.buffer(), span, false)
                            .expect("RCV staging");
                    }
                    let mut stats = h.stats.lock();
                    stats.rcv_copies += 1;
                    stats.copy_time += ctx.now().duration_since(t0);
                }
                // End of the rank's round: both staging leases go back to
                // the pool (this round's copies are done — the client's
                // STP was ACKed at the round boundary before it sent RCV —
                // so no copy still references them; a prefetched next
                // round's H2D reads `pinned_in_next`, which is promoted,
                // never recycled, here).
                if let Some(l) = ranks[r].pinned_in.take() {
                    ml.pool.recycle(ctx.tracer(), l);
                }
                if let Some(l) = ranks[r].pinned_out.take() {
                    ml.pool.recycle(ctx.tracer(), l);
                }
                ranks[r].pinned_in = ranks[r].pinned_in_next.take();
                ranks[r].h2d_preissued = std::mem::take(&mut ranks[r].h2d_preissued_next);
                ranks[r].round_tail = None;
                ranks[r].rounds_done += 1;
                send_recorded(ctx, &mut ranks[r], Response::ack(req.seq));
            }
            RequestKind::Rls => {
                ranks[r].state = RankState::Released;
                finished += 1;
                {
                    let rank = &mut ranks[r];
                    let idle = contexts[rank.dev_idx].stream_query(rank.stream);
                    // Under lazy allocation (fault tolerance or finite
                    // quotas) a released rank's device allocation is
                    // parked in the same cache the evict path feeds, so a
                    // later admission of the same shape (e.g. a second
                    // scheduling wave) reuses it instead of paying
                    // cudaMalloc again — and so demand-swap has idle
                    // working sets to evict. Fault-free unlimited GVMs
                    // keep the seed behavior: allocations live to
                    // shutdown.
                    if lazy_alloc && idle {
                        if let Some(gpu) = rank.gpu.take() {
                            ml.devcache.put(
                                rank.dev_idx,
                                rank.task.device_bytes.max(1),
                                gpu.dev_base,
                                ctx.now(),
                            );
                        }
                    }
                    // Releasing the session releases its quota charge
                    // (the parked allocation is cache capacity, not
                    // session commitment).
                    quota_credit_all(ctx, &h, &cudas, rank, r);
                    // A client that releases mid-cycle (after a prefetch,
                    // before the round it fed) leaves staged leases
                    // behind; reclaim them once nothing references them.
                    if idle {
                        if let Some(l) = rank.pinned_in.take() {
                            ml.pool.recycle(ctx.tracer(), l);
                        }
                        if let Some(l) = rank.pinned_in_next.take() {
                            ml.pool.recycle(ctx.tracer(), l);
                        }
                        if let Some(l) = rank.pinned_out.take() {
                            ml.pool.recycle(ctx.tracer(), l);
                        }
                    }
                    // The zero-copy lease's generation is bumped either
                    // way, so any descriptor the client still holds goes
                    // stale. With copies still in flight the lease is
                    // retired instead of recycled — nobody can ever be
                    // handed a window an async copy still references.
                    if let Some(l) = rank.zc_lease.take() {
                        rank.zc_desc = None;
                        if idle {
                            ml.pool.recycle(ctx.tracer(), l);
                        } else {
                            ml.pool.retire(ctx.tracer(), l);
                        }
                    }
                    rank.round_tail = None;
                }
                send_recorded(ctx, &mut ranks[r], Response::ack(req.seq));
                // A release shrinks the group: the barrier other ranks are
                // waiting behind may now be satisfied at the reduced width
                // (in every mode — the seed only re-evaluated under fault
                // tolerance, which hung non-uniform fault-free groups).
                let active = active_count(&ranks);
                let groups = scheduler.on_membership(&str_waiting, active);
                dispatch_groups(
                    ctx,
                    &h,
                    &contexts,
                    &mut ranks,
                    &mut str_waiting,
                    &mut batch_start,
                    &mut ml,
                    groups,
                );
            }
        }
    }

    // Free device resources still held (released ranks keep theirs until
    // GVM shutdown; evicted ranks were reclaimed at eviction), and settle
    // any quota charge a rank still carries (a Closed-queue exit can leave
    // sessions mid-cycle).
    for r in 0..ranks.len() {
        quota_credit_all(ctx, &h, &cudas, &mut ranks[r], r);
        if let Some(gpu) = &ranks[r].gpu {
            let _ = cudas[ranks[r].dev_idx].device().free(gpu.dev_base);
        }
        // A Closed-queue exit can leave zero-copy sessions mid-cycle with
        // their boot leases still held; settle them so the pool's
        // allocated/in-use ledgers balance at shutdown.
        if let Some(l) = ranks[r].zc_lease.take() {
            ml.pool.recycle(ctx.tracer(), l);
        }
    }
    // Return parked device allocations with real frees so the device's
    // alloc/free balance (and `used() == 0`) holds at shutdown; swapped
    // entries hold no device memory, their staging leases go back to the
    // pool (`PoolRecycle` is the retirement marker the quota checker
    // matches against outstanding swap-outs).
    for (dev, _bytes, state) in ml.devcache.drain() {
        match state {
            CachedAlloc::Resident(ptr) => {
                let _ = cudas[dev].device().free(ptr);
            }
            CachedAlloc::Swapped(lease) => {
                ml.pool.recycle(ctx.tracer(), lease);
            }
        }
    }
    {
        let ps = ml.pool.stats();
        let cs = ml.devcache.stats();
        let mut stats = h.stats.lock();
        stats.pool_hits = ps.hits;
        stats.pool_misses = ps.misses;
        stats.pool_high_water_bytes = ps.high_water_bytes;
        stats.pool_released_buffers = ps.released_buffers;
        stats.pool_released_bytes = ps.released_bytes;
        stats.pool_over_cap = ps.over_cap;
        stats.pool_backpressure_waits = ps.backpressure_waits;
        stats.devcache_hits = cs.hits;
        stats.devcache_misses = cs.misses;
    }
    h.done.open(ctx);
}

/// Send `resp` to `rank` and record it for idempotent retries. In the
/// fault-free GVM a send failure is a bug (queues never close); under
/// fault tolerance a closed queue just means the rank is already gone.
fn send_recorded(ctx: &mut Ctx, rank: &mut RankResources, resp: Response) {
    rank.last_resp = Some(resp.kind);
    let _ = rank.resp.send(ctx, resp);
}

/// Charge `bytes` against rank `r`'s quota meter, the device's commitment
/// ledger, and the analysis stream. No-op when quota accounting is off.
fn quota_charge(
    ctx: &Ctx,
    h: &GvmHandle,
    cudas: &[CudaDevice],
    rank: &mut RankResources,
    r: usize,
    bytes: u64,
) {
    if h.config.quotas.is_none() {
        return;
    }
    rank.charged += bytes;
    cudas[rank.dev_idx]
        .device()
        .with_memory(|m| m.charge(bytes));
    ctx.tracer()
        .record_analysis(gv_sim::AnalysisRecord::QuotaCharge {
            time: ctx.now(),
            gvm: h.endpoints.gvm.clone(),
            rank: r,
            bytes,
            charged: rank.charged,
        });
}

/// Release everything rank `r` still has charged against its quota (at
/// `RLS`, eviction, or GVM shutdown). No-op when nothing is charged.
fn quota_credit_all(
    ctx: &Ctx,
    h: &GvmHandle,
    cudas: &[CudaDevice],
    rank: &mut RankResources,
    r: usize,
) {
    if rank.charged == 0 {
        return;
    }
    let bytes = std::mem::take(&mut rank.charged);
    cudas[rank.dev_idx]
        .device()
        .with_memory(|m| m.credit(bytes));
    ctx.tracer()
        .record_analysis(gv_sim::AnalysisRecord::QuotaCredit {
            time: ctx.now(),
            gvm: h.endpoints.gvm.clone(),
            rank: r,
            bytes,
            charged: 0,
        });
}

/// Allocate `bytes` on `dev_idx` for rank `r`, demand-swapping idle parked
/// working sets (LRU-first) out to pooled pinned host staging until the
/// allocation fits — when [`GvmConfig::swap`] is on; a plain `malloc`
/// otherwise. The requesting rank's (idle) stream carries the D2H copies,
/// and each victim's device memory is freed only after its copies
/// completed, so no copy ever references freed memory.
#[allow(clippy::too_many_arguments)]
fn alloc_with_swap(
    ctx: &mut Ctx,
    h: &GvmHandle,
    cudas: &[CudaDevice],
    contexts: &[gv_cuda::CudaContext],
    ml: &mut MemLayer,
    r: usize,
    dev_idx: usize,
    stream: gv_gpu::StreamId,
    numa: usize,
    bytes: u64,
) -> Result<DevicePtr, gv_cuda::CudaError> {
    loop {
        let err = match contexts[dev_idx].malloc(bytes) {
            Ok(ptr) => return Ok(ptr),
            Err(e) => e,
        };
        if !h.config.swap {
            return Err(err);
        }
        // Pick the coldest resident parked allocation on this device; if
        // nothing is parked there is nothing left to swap and the OOM is
        // final.
        let Some((vbytes, vptr, vstamp)) = ml.devcache.lru_resident(dev_idx) else {
            return Err(err);
        };
        // Stage the victim's bytes into an opaque pool lease through the
        // chunked planner (the staging checker audits the tiling like any
        // other transfer), then free the device memory and re-park the
        // entry as swapped with its LRU stamp preserved. `acquire_on`
        // never blocks, so admission backpressure cannot deadlock against
        // a swap in progress.
        let lease = ml.pool.acquire_on(ctx.tracer(), vbytes, false, numa);
        let (xfer, spans) = ml.plan(ctx.tracer(), r, vbytes);
        for span in &spans {
            let cmd = contexts[dev_idx]
                .memcpy_d2h_async_at(
                    ctx,
                    stream,
                    vptr.add(span.offset),
                    lease.buffer(),
                    span.offset,
                    span.len,
                )
                .expect("swap-out D2H submit");
            gv_mem::record_chunk(
                ctx.tracer(),
                cudas[dev_idx].device().tracer_ordinal(),
                r,
                xfer,
                false,
                *span,
                vbytes,
                lease.id(),
                format!("cmd-{}", cmd.id),
            );
        }
        contexts[dev_idx].stream_synchronize(ctx, stream);
        let _ = cudas[dev_idx].device().free(vptr);
        ctx.tracer()
            .record_analysis(gv_sim::AnalysisRecord::SwapOut {
                time: ctx.now(),
                gvm: h.endpoints.gvm.clone(),
                device: cudas[dev_idx].device().tracer_ordinal(),
                buf: lease.id(),
                bytes: vbytes,
            });
        {
            let mut stats = h.stats.lock();
            stats.swap_outs += 1;
            stats.swapped_out_bytes += vbytes;
        }
        ml.devcache.park_swapped(dev_idx, vbytes, lease, vstamp);
    }
}

/// Evict `r`: reclaim its device memory, close and unlink its response
/// queue, unlink its shared-memory segment, and drop it from the barrier —
/// an implicit `RLS` performed by the GVM on the rank's behalf.
///
/// Reclaimed buffers are recycled (device allocation into the cache,
/// staging leases back to the pool) only when the rank's stream is idle;
/// with work still in flight the allocation is freed for real (as the
/// seed did) and the leases are retired un-recycled, so no other rank can
/// ever be handed a buffer an in-flight copy still references.
#[allow(clippy::too_many_arguments)]
fn evict(
    ctx: &mut Ctx,
    h: &GvmHandle,
    cudas: &[CudaDevice],
    contexts: &[gv_cuda::CudaContext],
    ranks: &mut [RankResources],
    str_waiting: &mut Vec<usize>,
    ml: &mut MemLayer,
    r: usize,
) {
    let rank = &mut ranks[r];
    rank.state = RankState::Evicted;
    let idle = contexts[rank.dev_idx].stream_query(rank.stream);
    if let Some(gpu) = rank.gpu.take() {
        if idle {
            ml.devcache.put(
                rank.dev_idx,
                rank.task.device_bytes.max(1),
                gpu.dev_base,
                ctx.now(),
            );
        } else {
            let _ = cudas[rank.dev_idx].device().free(gpu.dev_base);
        }
    }
    quota_credit_all(ctx, h, cudas, rank, r);
    if idle {
        if let Some(l) = rank.pinned_in.take() {
            ml.pool.recycle(ctx.tracer(), l);
        }
        if let Some(l) = rank.pinned_in_next.take() {
            ml.pool.recycle(ctx.tracer(), l);
        }
        if let Some(l) = rank.pinned_out.take() {
            ml.pool.recycle(ctx.tracer(), l);
        }
    } else {
        rank.pinned_in = None;
        rank.pinned_in_next = None;
        rank.pinned_out = None;
    }
    // The zero-copy boot lease: recycle when safe, retire (generation
    // bump, no reuse) while its window may still be referenced by an
    // in-flight copy. Either way the evicted client's descriptor is
    // stale from here on.
    if let Some(l) = rank.zc_lease.take() {
        rank.zc_desc = None;
        if idle {
            ml.pool.recycle(ctx.tracer(), l);
        } else {
            ml.pool.retire(ctx.tracer(), l);
        }
    }
    rank.round_tail = None;
    rank.resp.close(ctx);
    let _ = h.resp_mq.unlink(&h.endpoints.response_queue(r));
    let _ = h.shm.unlink(&h.endpoints.shm(r));
    str_waiting.retain(|&w| w != r);
    ctx.tracer().fault(ctx.now(), format!("evict:rank{r}"));
    ctx.tracer()
        .record_analysis(gv_sim::AnalysisRecord::ProtoEvict {
            time: ctx.now(),
            gvm: h.endpoints.gvm.clone(),
            rank: r,
        });
    h.stats.lock().evictions += 1;
}

/// Number of ranks still being served.
fn active_count(ranks: &[RankResources]) -> usize {
    ranks
        .iter()
        .filter(|k| k.state == RankState::Active)
        .count()
}

/// Execute the scheduler's decision: flush each returned group in order.
/// Resets the batch window once the backlog drains.
#[allow(clippy::too_many_arguments)]
fn dispatch_groups(
    ctx: &mut Ctx,
    h: &GvmHandle,
    contexts: &[gv_cuda::CudaContext],
    ranks: &mut [RankResources],
    str_waiting: &mut Vec<usize>,
    batch_start: &mut Option<gv_sim::SimTime>,
    ml: &mut MemLayer,
    groups: Vec<Dispatch>,
) {
    for group in groups {
        if group.is_empty() {
            continue;
        }
        flush_group(
            ctx,
            h,
            contexts,
            ranks,
            str_waiting,
            batch_start,
            ml,
            &group,
        );
    }
    if str_waiting.is_empty() {
        *batch_start = None;
    }
}

/// Flush one group's streams (in the scheduler's submission order), then
/// ACK the covered ranks in `STR` arrival order and drop them from the
/// barrier.
#[allow(clippy::too_many_arguments)]
fn flush_group(
    ctx: &mut Ctx,
    h: &GvmHandle,
    contexts: &[gv_cuda::CudaContext],
    ranks: &mut [RankResources],
    str_waiting: &mut Vec<usize>,
    batch_start: &Option<gv_sim::SimTime>,
    ml: &mut MemLayer,
    group: &[usize],
) {
    let cfg = &h.config;
    let t0 = ctx.now();
    let active = active_count(ranks);
    // The coalescing planner only takes over multi-rank flushes on the
    // overlapped (non-serial) schedule, and never in a swapping GVM —
    // demand-swap can relocate lease windows mid-session, so fusing
    // across it is forbidden (the gv-analyze coalesce checker enforces
    // this over traces). Everything else goes through the unmodified
    // per-rank path, which stays bit-identical to the pre-coalescing
    // schedule.
    let coalesce = ml.mem.coalesce.enabled && group.len() >= 2 && !cfg.serial_flush && !cfg.swap;
    let dma_ops = if coalesce {
        flush_group_coalesced(ctx, h, contexts, ranks, ml, group)
    } else {
        let mut dma_ops = 0u64;
        for &r in group {
            let rank = &mut ranks[r];
            let cc = &contexts[rank.dev_idx];
            dma_ops += flush_rank(ctx, cc, h, r, rank, ml);
            if cfg.serial_flush {
                cc.stream_synchronize(ctx, rank.stream);
            }
        }
        dma_ops
    };
    // The queueing delay this dispatch imposed: how long the oldest
    // pending STR sat behind the policy's trigger.
    let gap = batch_start
        .map(|b| t0.duration_since(b))
        .unwrap_or(SimDuration::ZERO);
    {
        let mut stats = h.stats.lock();
        stats.flushes += 1;
        stats.submit_time += ctx.now().duration_since(t0);
        stats.idle_gap += gap;
        stats.flush_dma_ops += dma_ops;
        if group.len() < active {
            stats.partial_flushes += 1;
        }
    }
    if gap > SimDuration::ZERO {
        ctx.tracer()
            .instant(t0, "sched", format!("idle-gap:{}ns", gap.as_nanos()));
    }
    // "Barrier to synchronize ACK to all processes" — arrival order, as in
    // the paper's joint flush, restricted to the covered ranks. The order
    // is assembled into a reusable scratch so steady-state flushes do not
    // allocate.
    ml.ack.clear();
    ml.ack
        .extend(str_waiting.iter().filter(|w| group.contains(w)).copied());
    if ctx.tracer().analysis_enabled() {
        ctx.tracer()
            .record_analysis(gv_sim::AnalysisRecord::ProtoFlush {
                time: ctx.now(),
                gvm: h.endpoints.gvm.clone(),
                ranks: ml.ack.clone(),
            });
    }
    if cfg.mem.zero_copy && !ml.ack.is_empty() {
        // Descriptor-passing batches the flush ACKs: the mq latency is
        // charged once per flush instead of once per rank, then every
        // covered rank's ACK is enqueued prepaid (message faults still
        // apply per queue). This is the "one mq round-trip per scheduler
        // flush" half of the zero-copy overhead cut.
        let first = ml.ack[0];
        ranks[first].resp.charge_latency(ctx);
        for &rr in &ml.ack {
            let seq = ranks[rr].last_seq;
            let rank = &mut ranks[rr];
            rank.last_resp = Some(ResponseKind::Ack);
            let _ = rank.resp.send_prepaid(ctx, Response::ack(seq));
        }
    } else {
        for &rr in &ml.ack {
            let seq = ranks[rr].last_seq;
            let rank = &mut ranks[rr];
            rank.last_resp = Some(ResponseKind::Ack);
            let _ = rank.resp.send(ctx, Response::ack(seq));
        }
    }
    str_waiting.retain(|w| !group.contains(w));
}

/// One device's kernel wave: device index, rank count, and the
/// per-stream launch descriptors in flush order.
type LaunchWave = (usize, usize, Vec<(gv_gpu::StreamId, gv_gpu::KernelDesc)>);

/// One transfer a coalescing wave wants to move: the member's rank, its
/// payload this iteration, and the chunk count the serial path would use.
struct WaveXfer {
    r: usize,
    bytes: u64,
    k: u64,
}

/// The staging lease a wave member's transfer sources from / drains into.
fn wave_lease(rank: &RankResources, zc: bool, h2d: bool) -> &StagingLease {
    if zc {
        rank.zc_lease.as_ref().expect("zero-copy lease")
    } else if h2d {
        rank.pinned_in.as_ref().expect("SND leased pinned_in")
    } else {
        rank.pinned_out
            .as_ref()
            .expect("pinned_out leased at flush")
    }
}

/// The coalescing flush: instead of enqueueing each rank's complete
/// pipeline in turn, the group is submitted *wave-per-iteration* — all
/// ranks' H2D transfers, then all their kernel launches, then all their
/// D2H drains, per iteration. Per-stream command order is unchanged (each
/// rank still sees H2D → kernels → D2H on its own in-order stream), so
/// functional outputs are bitwise identical to the per-rank path; only
/// the submission schedule differs:
///
/// * Within a wave, runs of members whose staging leases are adjacent in
///   host memory ([`CoalescePlan`]) go down as one fused DMA submission —
///   the copy engine sweeps the combined range and every sub-op after the
///   first elides the per-op setup latency. Each fused submission leaves
///   an [`AnalysisRecord::CoalesceOp`](gv_sim::AnalysisRecord::CoalesceOp)
///   manifest for the gv-analyze coalesce checker.
/// * When a wave's kernels span ≥ 2 ranks on one device, the launches go
///   down as a single batched submission charging the host launch
///   overhead once instead of once per kernel.
fn flush_group_coalesced(
    ctx: &mut Ctx,
    h: &GvmHandle,
    contexts: &[gv_cuda::CudaContext],
    ranks: &mut [RankResources],
    ml: &mut MemLayer,
    group: &[usize],
) -> u64 {
    let zc = ml.mem.zero_copy;
    let ccfg = ml.mem.coalesce;
    let quota_on = h.config.quotas.is_some();
    let analysis = ctx.tracer().analysis_enabled();
    let mut dma_ops = 0u64;
    let mut fused_groups = 0u64;
    let mut fused_subs = 0u64;
    let mut launch_waves = 0u64;
    let mut batched_launches = 0u64;

    // Output leases are acquired upfront, place-chained, so the D2H waves
    // see adjacent regions; pre-issued iteration-0 H2Ds are taken now.
    let mut preissued = vec![false; group.len()];
    let mut chain: Option<u64> = None;
    for (gi, &r) in group.iter().enumerate() {
        let rank = &mut ranks[r];
        let (bytes_out, functional) = (rank.task.bytes_out, rank.task.is_functional());
        if bytes_out > 0 && !zc && rank.pinned_out.is_none() {
            let lease = ml
                .pool
                .acquire_at(ctx.tracer(), bytes_out, functional, rank.numa, chain);
            chain = Some(lease.place_addr() + lease.capacity());
            rank.pinned_out = Some(lease);
        } else if let Some(l) = rank.pinned_out.as_ref() {
            chain = Some(l.place_addr() + l.capacity());
        }
        preissued[gi] = std::mem::take(&mut rank.h2d_preissued);
    }
    let max_iters = group
        .iter()
        .map(|&r| ranks[r].task.iterations)
        .max()
        .unwrap_or(0);

    for it in 0..max_iters {
        // ---- H2D wave: per device, fuse adjacent-lease runs. ----
        let mut by_dev: Vec<(usize, Vec<WaveXfer>)> = Vec::new();
        for (gi, &r) in group.iter().enumerate() {
            let rank = &ranks[r];
            if it >= rank.task.iterations || (it == 0 && preissued[gi]) {
                continue;
            }
            let bytes = rank.task.bytes_in_for_round(rank.rounds_done);
            if bytes == 0 {
                continue;
            }
            let k = if ml.mem.pipeline.first_round_only {
                1
            } else {
                ml.chooser.choose(bytes, &ml.mem.pipeline)
            };
            match by_dev.iter_mut().find(|(d, _)| *d == rank.dev_idx) {
                Some((_, v)) => v.push(WaveXfer { r, bytes, k }),
                None => by_dev.push((rank.dev_idx, vec![WaveXfer { r, bytes, k }])),
            }
        }
        for (dev_idx, xfers) in &by_dev {
            let cc = &contexts[*dev_idx];
            let members: Vec<CoalesceMember> = xfers
                .iter()
                .map(|x| {
                    let rank = &ranks[x.r];
                    let eligible = x.k == 1 && (!quota_on || rank.charged > 0);
                    CoalesceMember::from_lease(x.r, x.bytes, wave_lease(rank, zc, true), eligible)
                })
                .collect();
            let plan = CoalescePlan::plan(&ccfg, &members);
            for run in &plan.runs {
                if run.len() >= 2 {
                    let items: Vec<gv_cuda::BatchH2d<'_>> = run
                        .iter()
                        .map(|&i| {
                            let rank = &ranks[xfers[i].r];
                            gv_cuda::BatchH2d {
                                stream: rank.stream,
                                src: wave_lease(rank, zc, true).buffer(),
                                src_offset: 0,
                                dst: rank.gpu.as_ref().expect("flushed rank allocated").dev_base,
                                bytes: xfers[i].bytes,
                            }
                        })
                        .collect();
                    let handles = cc
                        .memcpy_h2d_async_batch(ctx, &items)
                        .expect("GVM fused H2D submit");
                    dma_ops += run.len() as u64;
                    fused_groups += 1;
                    fused_subs += run.len() as u64;
                    if analysis {
                        record_coalesce_op(ctx, h, cc, true, run, &members, &handles);
                    }
                } else {
                    let i = run[0];
                    let (r, bytes, k) = (xfers[i].r, xfers[i].bytes, xfers[i].k);
                    let rank = &ranks[r];
                    let gpu = rank.gpu.as_ref().expect("flushed rank allocated");
                    let lease = wave_lease(rank, zc, true);
                    if k > 1 {
                        let xfer = ml.plan_scratch(ctx.tracer(), r, bytes);
                        for span in &ml.spans {
                            let cmd = cc
                                .memcpy_h2d_async_at(
                                    ctx,
                                    rank.stream,
                                    lease.buffer(),
                                    span.offset,
                                    gpu.dev_base.add(span.offset),
                                    span.len,
                                )
                                .expect("GVM H2D submit");
                            let label = if analysis {
                                format!("cmd-{}", cmd.id)
                            } else {
                                String::new()
                            };
                            gv_mem::record_chunk(
                                ctx.tracer(),
                                cc.cuda().device().tracer_ordinal(),
                                r,
                                xfer,
                                true,
                                *span,
                                bytes,
                                lease.id(),
                                label,
                            );
                        }
                        dma_ops += ml.spans.len() as u64;
                        let mut stats = h.stats.lock();
                        stats.chunked_transfers += 1;
                        stats.chunks_submitted += ml.spans.len() as u64;
                    } else {
                        cc.memcpy_h2d_async(ctx, rank.stream, lease.buffer(), gpu.dev_base, bytes)
                            .expect("GVM H2D submit");
                        dma_ops += 1;
                    }
                }
            }
        }

        // ---- Kernel wave: batch launches when ≥ 2 ranks share a device. ----
        let mut launches: Vec<LaunchWave> = Vec::new();
        for &r in group {
            let rank = &ranks[r];
            if it >= rank.task.iterations {
                continue;
            }
            let gpu = rank.gpu.as_ref().expect("flushed rank allocated");
            let items: Vec<_> = gpu
                .kernels
                .iter()
                .map(|k| (rank.stream, k.clone()))
                .collect();
            match launches.iter_mut().find(|(d, _, _)| *d == rank.dev_idx) {
                Some((_, n, v)) => {
                    *n += 1;
                    v.extend(items);
                }
                None => launches.push((rank.dev_idx, 1, items)),
            }
        }
        for (dev_idx, nranks, items) in launches {
            let cc = &contexts[dev_idx];
            if nranks >= 2 && !items.is_empty() {
                cc.launch_batch(ctx, &items).expect("GVM batched launch");
                launch_waves += 1;
                batched_launches += items.len() as u64;
            } else {
                for (stream, k) in items {
                    cc.launch(ctx, stream, k).expect("GVM launch");
                }
            }
        }

        // ---- D2H wave: staged drains every iteration, zero-copy only on
        // the final one (one lease window serves both directions). ----
        let mut by_dev: Vec<(usize, Vec<WaveXfer>)> = Vec::new();
        for &r in group {
            let rank = &ranks[r];
            if it >= rank.task.iterations || rank.task.bytes_out == 0 {
                continue;
            }
            if zc && it + 1 != rank.task.iterations {
                continue;
            }
            let bytes = rank.task.bytes_out;
            let k = ml.chooser.choose(bytes, &ml.mem.pipeline);
            match by_dev.iter_mut().find(|(d, _)| *d == rank.dev_idx) {
                Some((_, v)) => v.push(WaveXfer { r, bytes, k }),
                None => by_dev.push((rank.dev_idx, vec![WaveXfer { r, bytes, k }])),
            }
        }
        for (dev_idx, xfers) in &by_dev {
            let cc = &contexts[*dev_idx];
            let members: Vec<CoalesceMember> = xfers
                .iter()
                .map(|x| {
                    let rank = &ranks[x.r];
                    let eligible = x.k == 1 && (!quota_on || rank.charged > 0);
                    CoalesceMember::from_lease(x.r, x.bytes, wave_lease(rank, zc, false), eligible)
                })
                .collect();
            let plan = CoalescePlan::plan(&ccfg, &members);
            for run in &plan.runs {
                if run.len() >= 2 {
                    let items: Vec<gv_cuda::BatchD2h<'_>> = run
                        .iter()
                        .map(|&i| {
                            let rank = &ranks[xfers[i].r];
                            let gpu = rank.gpu.as_ref().expect("flushed rank allocated");
                            gv_cuda::BatchD2h {
                                stream: rank.stream,
                                src: gpu.dev_base.add(rank.task.d2h_offset),
                                dst: wave_lease(rank, zc, false).buffer(),
                                dst_offset: 0,
                                bytes: xfers[i].bytes,
                            }
                        })
                        .collect();
                    let handles = cc
                        .memcpy_d2h_async_batch(ctx, &items)
                        .expect("GVM fused D2H submit");
                    dma_ops += run.len() as u64;
                    fused_groups += 1;
                    fused_subs += run.len() as u64;
                    if analysis {
                        record_coalesce_op(ctx, h, cc, false, run, &members, &handles);
                    }
                } else {
                    let i = run[0];
                    let (r, bytes) = (xfers[i].r, xfers[i].bytes);
                    let rank = &ranks[r];
                    let gpu = rank.gpu.as_ref().expect("flushed rank allocated");
                    let lease = wave_lease(rank, zc, false);
                    let xfer = ml.plan_scratch(ctx.tracer(), r, bytes);
                    for span in &ml.spans {
                        let cmd = cc
                            .memcpy_d2h_async_at(
                                ctx,
                                rank.stream,
                                gpu.dev_base.add(rank.task.d2h_offset + span.offset),
                                lease.buffer(),
                                span.offset,
                                span.len,
                            )
                            .expect("GVM D2H submit");
                        let label = if analysis {
                            format!("cmd-{}", cmd.id)
                        } else {
                            String::new()
                        };
                        gv_mem::record_chunk(
                            ctx.tracer(),
                            cc.cuda().device().tracer_ordinal(),
                            r,
                            xfer,
                            false,
                            *span,
                            bytes,
                            lease.id(),
                            label,
                        );
                    }
                    dma_ops += ml.spans.len() as u64;
                    if ml.spans.len() > 1 {
                        let mut stats = h.stats.lock();
                        stats.chunked_transfers += 1;
                        stats.chunks_submitted += ml.spans.len() as u64;
                    }
                }
            }
        }
    }

    if ml.mem.pipeline.steady {
        for &r in group {
            let rank = &mut ranks[r];
            rank.round_tail = contexts[rank.dev_idx].stream_tail(rank.stream);
        }
    }
    {
        let mut stats = h.stats.lock();
        stats.fused_dma_groups += fused_groups;
        stats.fused_dma_subs += fused_subs;
        stats.batched_launch_waves += launch_waves;
        stats.batched_launches += batched_launches;
    }
    dma_ops
}

/// Emit the fused submission's [`CoalesceOp`] manifest: member ranks in
/// submission order, their byte spans within the fused batch, the backing
/// pool buffers and lease generations, and the engine command id of each
/// sub-op (pairing with the per-device `CopyBegin`/`CopyEnd` labels).
///
/// [`CoalesceOp`]: gv_sim::AnalysisRecord::CoalesceOp
fn record_coalesce_op(
    ctx: &mut Ctx,
    h: &GvmHandle,
    cc: &gv_cuda::CudaContext,
    h2d: bool,
    run: &[usize],
    members: &[CoalesceMember],
    handles: &[gv_gpu::CommandHandle],
) {
    let mut offsets = Vec::with_capacity(run.len());
    let mut cursor = 0u64;
    for &i in run {
        offsets.push(cursor);
        cursor += members[i].bytes;
    }
    ctx.tracer()
        .record_analysis(gv_sim::AnalysisRecord::CoalesceOp {
            time: ctx.now(),
            gvm: h.endpoints.gvm.clone(),
            device: cc.cuda().device().tracer_ordinal(),
            h2d,
            total: cursor,
            ranks: run.iter().map(|&i| members[i].rank as u64).collect(),
            offsets,
            lens: run.iter().map(|&i| members[i].bytes).collect(),
            bufs: run.iter().map(|&i| members[i].buf).collect(),
            gens: run.iter().map(|&i| members[i].generation).collect(),
            cmds: handles.iter().map(|cmd| cmd.id).collect(),
        });
}

/// Enqueue one rank's complete pipeline into its stream: per iteration,
/// async H2D from pinned, the kernel sequence, async D2H into pinned.
///
/// When `SND` already pre-issued the input payload as chunked copies, the
/// first iteration's H2D is skipped — it is already queued ahead of the
/// kernels in the same in-order stream. Output payloads at or above the
/// pipeline threshold are split into chunks so the D2H of early chunks
/// overlaps the compute still queued behind them on other ranks' streams.
fn flush_rank(
    ctx: &mut Ctx,
    cc: &gv_cuda::CudaContext,
    h: &GvmHandle,
    r: usize,
    rank: &mut RankResources,
    ml: &mut MemLayer,
) -> u64 {
    let mut dma_ops = 0u64;
    let (bytes_in, bytes_out, d2h_offset, iterations, functional) = (
        rank.task.bytes_in_for_round(rank.rounds_done),
        rank.task.bytes_out,
        rank.task.d2h_offset,
        rank.task.iterations,
        rank.task.is_functional(),
    );
    let zc = ml.mem.zero_copy;
    let analysis = ctx.tracer().analysis_enabled();
    // Zero-copy needs no pinned_out: results drain straight into the
    // rank's lease-backed segment on the final iteration.
    if bytes_out > 0 && !zc && rank.pinned_out.is_none() {
        rank.pinned_out = Some(
            ml.pool
                .acquire_on(ctx.tracer(), bytes_out, functional, rank.numa),
        );
    }
    let gpu = rank
        .gpu
        .as_ref()
        .expect("barriered rank has device allocation");
    let preissued = std::mem::take(&mut rank.h2d_preissued);
    for it in 0..iterations {
        if bytes_in > 0 && !(it == 0 && preissued) {
            // Re-loads source the zero-copy lease directly (the client's
            // input is still untouched there until the final D2H) or the
            // staged pinned_in lease.
            let lease = if zc {
                rank.zc_lease.as_ref().expect("zero-copy lease")
            } else {
                rank.pinned_in.as_ref().expect("SND leased pinned_in")
            };
            // The first-round-only ablation re-uploads monolithically, as
            // the pre-steady-state flush did.
            let k = if ml.mem.pipeline.first_round_only {
                1
            } else {
                ml.chooser.choose(bytes_in, &ml.mem.pipeline)
            };
            if k > 1 {
                // Later iterations re-load the input chunk-wise too:
                // tiles release the shared H2D engine between spans, so
                // other ranks' copies interleave instead of waiting out
                // one monolithic transfer at the head of the engine queue.
                let xfer = ml.plan_scratch(ctx.tracer(), r, bytes_in);
                for span in &ml.spans {
                    let cmd = cc
                        .memcpy_h2d_async_at(
                            ctx,
                            rank.stream,
                            lease.buffer(),
                            span.offset,
                            gpu.dev_base.add(span.offset),
                            span.len,
                        )
                        .expect("GVM H2D submit");
                    let label = if analysis {
                        format!("cmd-{}", cmd.id)
                    } else {
                        String::new()
                    };
                    gv_mem::record_chunk(
                        ctx.tracer(),
                        cc.cuda().device().tracer_ordinal(),
                        r,
                        xfer,
                        true,
                        *span,
                        bytes_in,
                        lease.id(),
                        label,
                    );
                }
                dma_ops += ml.spans.len() as u64;
                let mut stats = h.stats.lock();
                stats.chunked_transfers += 1;
                stats.chunks_submitted += ml.spans.len() as u64;
            } else {
                cc.memcpy_h2d_async(ctx, rank.stream, lease.buffer(), gpu.dev_base, bytes_in)
                    .expect("GVM H2D submit");
                dma_ops += 1;
            }
        }
        for k in &gpu.kernels {
            cc.launch(ctx, rank.stream, k.clone()).expect("GVM launch");
        }
        // Zero-copy drains results only on the final iteration: one lease
        // window serves both directions, and an intermediate D2H would
        // clobber the input region that later iterations' re-loads still
        // read. D2H never mutates device state, so skipping the
        // intermediate drains leaves the final output bit-identical.
        if bytes_out > 0 && (!zc || it + 1 == iterations) {
            let lease = if zc {
                rank.zc_lease.as_ref().expect("zero-copy lease")
            } else {
                rank.pinned_out.as_ref().expect("pinned_out leased above")
            };
            let xfer = ml.plan_scratch(ctx.tracer(), r, bytes_out);
            for span in &ml.spans {
                let cmd = cc
                    .memcpy_d2h_async_at(
                        ctx,
                        rank.stream,
                        gpu.dev_base.add(d2h_offset + span.offset),
                        lease.buffer(),
                        span.offset,
                        span.len,
                    )
                    .expect("GVM D2H submit");
                let label = if analysis {
                    format!("cmd-{}", cmd.id)
                } else {
                    String::new()
                };
                gv_mem::record_chunk(
                    ctx.tracer(),
                    cc.cuda().device().tracer_ordinal(),
                    r,
                    xfer,
                    false,
                    *span,
                    bytes_out,
                    lease.id(),
                    label,
                );
            }
            dma_ops += ml.spans.len() as u64;
            if ml.spans.len() > 1 {
                let mut stats = h.stats.lock();
                stats.chunked_transfers += 1;
                stats.chunks_submitted += ml.spans.len() as u64;
            }
        }
    }
    // Steady mode pins this round's completion point now, before any
    // prefetched next-round H2D lands on the stream and moves its tail.
    if ml.mem.pipeline.steady {
        rank.round_tail = cc.stream_tail(rank.stream);
    }
    dma_ops
}

//! The GPU Virtualization Manager (paper §V).
//!
//! The GVM is a run-time process that owns the *single* GPU context and all
//! GPU resources. At initialization it creates, for every SPMD rank: a
//! virtual shared memory segment, a response queue, a CUDA stream, device
//! memory, and pinned staging buffers, and pre-binds the rank's kernels —
//! then serves `REQ/SND/STR/STP/RCV/RLS` requests. `STR` requests are
//! buffered behind a barrier and all streams are flushed together so Fermi
//! can overlap copies with compute and run small kernels concurrently
//! within the one context.

use std::sync::Arc;

use gv_cuda::{CudaDevice, HostBuffer};
use gv_gpu::DevicePtr;
use gv_ipc::{MessageQueue, MqRegistry, Node, SharedMem, ShmRegistry};
use gv_kernels::GpuTask;
use gv_sim::{Ctx, Gate, SimDuration, Simulation};
use parking_lot::Mutex;

use crate::protocol::{Endpoints, Request, RequestKind, Response};

/// GVM configuration.
#[derive(Debug, Clone)]
pub struct GvmConfig {
    /// Instance name (namespaces queues and segments).
    pub name: String,
    /// Number of SPMD processes served (the `STR` barrier width).
    pub ntask: usize,
    /// Client `STP` poll backoff: initial interval.
    pub poll_initial: SimDuration,
    /// Client `STP` poll backoff: cap.
    pub poll_max: SimDuration,
    /// Ablation: drain each rank's stream before flushing the next (no
    /// cross-process overlap — what a naive time-sharing manager would do).
    pub serial_flush: bool,
}

impl GvmConfig {
    /// Defaults for `ntask` processes.
    pub fn new(ntask: usize) -> Self {
        GvmConfig {
            name: "gvm".to_string(),
            ntask,
            poll_initial: SimDuration::from_micros(50),
            poll_max: SimDuration::from_millis(4),
            serial_flush: false,
        }
    }

    /// The serial-flush ablation variant.
    pub fn serial_flush(ntask: usize) -> Self {
        GvmConfig {
            serial_flush: true,
            ..Self::new(ntask)
        }
    }
}

/// Counters describing what the GVM did (virtualization-overhead audit).
#[derive(Debug, Clone, Default)]
pub struct GvmStats {
    /// `SND` staging copies performed (shm → pinned).
    pub snd_copies: u64,
    /// `RCV` copies performed (pinned → shm).
    pub rcv_copies: u64,
    /// Total simulated time the GVM spent in staging memcpys.
    pub copy_time: SimDuration,
    /// `STR` barrier flushes performed.
    pub flushes: u64,
    /// Total simulated time spent submitting stream work at flushes.
    pub submit_time: SimDuration,
    /// `STP` queries answered with `WAIT`.
    pub stp_waits: u64,
}

struct RankResources {
    shm: SharedMem,
    resp: MessageQueue<Response>,
    /// Index of this rank's device/context (multi-GPU nodes round-robin).
    dev_idx: usize,
    stream: gv_gpu::StreamId,
    dev_base: DevicePtr,
    pinned_in: HostBuffer,
    pinned_out: HostBuffer,
    kernels: Vec<gv_gpu::KernelDesc>,
    task: GpuTask,
}

/// Handle returned by [`Gvm::install`]: everything a client process needs
/// to connect, plus lifecycle gates for the harness.
#[derive(Clone)]
pub struct GvmHandle {
    /// Queue/segment naming.
    pub endpoints: Endpoints,
    /// Configuration (barrier width, poll backoff).
    pub config: Arc<GvmConfig>,
    /// Shared-memory namespace for this node.
    pub shm: ShmRegistry,
    /// Request-queue namespace.
    pub req_mq: MqRegistry<Request>,
    /// Response-queue namespace.
    pub resp_mq: MqRegistry<Response>,
    /// Opens once the GVM finished initializing all virtual resources.
    pub ready: Gate,
    /// Opens once every rank has sent `RLS`.
    pub done: Gate,
    /// Per-rank task descriptions (clients read their input sizes here).
    pub tasks: Arc<Vec<GpuTask>>,
    /// Post-run statistics.
    pub stats: Arc<Mutex<GvmStats>>,
}

impl GvmHandle {
    /// The task assigned to `rank`.
    pub fn task(&self, rank: usize) -> &GpuTask {
        &self.tasks[rank]
    }
}

/// The GPU Virtualization Manager installer.
pub struct Gvm;

impl Gvm {
    /// Spawn a GVM process into `sim` serving `tasks[r]` for rank `r`.
    /// The GVM boots (context creation, resource setup) before opening
    /// `ready`; clients must wait on it.
    pub fn install(
        sim: &mut Simulation,
        node: &Node,
        cuda: &CudaDevice,
        config: GvmConfig,
        tasks: Vec<GpuTask>,
    ) -> GvmHandle {
        Self::install_multi(sim, node, std::slice::from_ref(cuda), config, tasks)
    }

    /// Multi-GPU variant: the GVM owns one context per device and assigns
    /// rank `r` to device `r % devices.len()` (the paper's architecture has
    /// one GPU per node; this extension shows the layer generalizes to
    /// fatter nodes without touching the client protocol).
    pub fn install_multi(
        sim: &mut Simulation,
        node: &Node,
        cudas: &[CudaDevice],
        config: GvmConfig,
        tasks: Vec<GpuTask>,
    ) -> GvmHandle {
        assert!(!cudas.is_empty(), "at least one device required");
        assert_eq!(tasks.len(), config.ntask, "one task per SPMD rank required");
        assert!(config.ntask >= 1);
        let endpoints = Endpoints::new(&config.name);
        let shm_reg = ShmRegistry::new(node.config());
        let req_reg: MqRegistry<Request> = MqRegistry::new(node.config());
        let resp_reg: MqRegistry<Response> = MqRegistry::new(node.config());
        let handle = GvmHandle {
            endpoints: endpoints.clone(),
            config: Arc::new(config),
            shm: shm_reg,
            req_mq: req_reg,
            resp_mq: resp_reg,
            ready: Gate::new(),
            done: Gate::new(),
            tasks: Arc::new(tasks),
            stats: Arc::new(Mutex::new(GvmStats::default())),
        };
        let h = handle.clone();
        let cudas = cudas.to_vec();
        let node = node.clone();
        sim.spawn(&h.endpoints.gvm.clone(), move |ctx| {
            gvm_main(ctx, h, cudas, node);
        });
        handle
    }
}

fn gvm_main(ctx: &mut Ctx, h: GvmHandle, cudas: Vec<CudaDevice>, node: Node) {
    let cfg = &h.config;
    let endpoints = &h.endpoints;

    // --- Initialization (paper Fig. 8, left column top) -----------------
    // "Gets the GPU device / Initializes Context": one charged context per
    // device (a single-GPU node pays exactly one creation).
    let contexts: Vec<gv_cuda::CudaContext> = cudas
        .iter()
        .enumerate()
        .map(|(i, cuda)| cuda.create_context(ctx, &format!("{}-ctx{i}", endpoints.gvm)))
        .collect();
    let req_q = h
        .req_mq
        .create(&endpoints.request_queue(), None)
        .expect("request queue name free");

    let mut ranks: Vec<RankResources> = Vec::with_capacity(cfg.ntask);
    for r in 0..cfg.ntask {
        let task = h.tasks[r].clone();
        let shm_size = task.bytes_in.max(task.bytes_out).max(1);
        let shm = h
            .shm
            .create(&endpoints.shm(r), shm_size)
            .expect("shm name free");
        let resp = h
            .resp_mq
            .create(&endpoints.response_queue(r), None)
            .expect("response queue name free");
        let dev_idx = r % contexts.len();
        let cc = &contexts[dev_idx];
        let stream = cc.stream_create();
        let dev_base = cc
            .malloc(task.device_bytes.max(1))
            .expect("GVM device allocation");
        let functional = task.is_functional();
        let pinned_in = if functional {
            HostBuffer::zeroed(task.bytes_in.max(1), true)
        } else {
            HostBuffer::opaque(task.bytes_in.max(1), true)
        };
        let pinned_out = if functional {
            HostBuffer::zeroed(task.bytes_out.max(1), true)
        } else {
            HostBuffer::opaque(task.bytes_out.max(1), true)
        };
        // "Prepares the kernels to be executed when initialized".
        let kernels = task.bind_kernels(dev_base);
        ranks.push(RankResources {
            shm,
            resp,
            dev_idx,
            stream,
            dev_base,
            pinned_in,
            pinned_out,
            kernels,
            task,
        });
    }
    h.ready.open(ctx);

    // --- Serve loop ------------------------------------------------------
    let mut str_waiting: Vec<usize> = Vec::new();
    let mut released = 0usize;
    while released < cfg.ntask {
        let Some(req) = req_q.recv(ctx) else { break };
        let r = req.rank;
        match req.kind {
            RequestKind::Req => {
                // "Provides Virtual and GPU Resource" — pre-created at init.
                ranks[r]
                    .resp
                    .send(ctx, Response::Ack)
                    .expect("resp queue open");
            }
            RequestKind::Snd => {
                // "Copies Data from Virtual Shared Memory to Host Pinned
                // Memory" — performed by the GVM, charged to the GVM.
                let bytes = ranks[r].task.bytes_in;
                if bytes > 0 {
                    let t0 = ctx.now();
                    if ranks[r].task.is_functional() {
                        let data = ranks[r].shm.read(ctx, 0, bytes).expect("shm read");
                        ranks[r].pinned_in.fill_bytes(&data);
                    } else {
                        ctx.hold(node.config().memcpy_time(bytes));
                    }
                    let mut stats = h.stats.lock();
                    stats.snd_copies += 1;
                    stats.copy_time += ctx.now().duration_since(t0);
                }
                ranks[r]
                    .resp
                    .send(ctx, Response::Ack)
                    .expect("resp queue open");
            }
            RequestKind::Str => {
                // "Buffers the STR message … Barrier to synchronize STR
                // from all processes", then flush every stream together.
                str_waiting.push(r);
                if str_waiting.len() == cfg.ntask {
                    let t0 = ctx.now();
                    for rank in ranks.iter_mut() {
                        let cc = &contexts[rank.dev_idx];
                        flush_rank(ctx, cc, rank);
                        if cfg.serial_flush {
                            cc.stream_synchronize(ctx, rank.stream);
                        }
                    }
                    {
                        let mut stats = h.stats.lock();
                        stats.flushes += 1;
                        stats.submit_time += ctx.now().duration_since(t0);
                    }
                    // "Barrier to synchronize ACK to all processes".
                    for &rr in &str_waiting {
                        ranks[rr]
                            .resp
                            .send(ctx, Response::Ack)
                            .expect("resp queue open");
                    }
                    str_waiting.clear();
                }
            }
            RequestKind::Stp => {
                // "If status(stream)=0 sends WAIT, otherwise sends ACK".
                let done = contexts[ranks[r].dev_idx].stream_query(ranks[r].stream);
                let resp = if done { Response::Ack } else { Response::Wait };
                if !done {
                    h.stats.lock().stp_waits += 1;
                }
                ranks[r].resp.send(ctx, resp).expect("resp queue open");
            }
            RequestKind::Rcv => {
                // "Copies Result Data from Host Pinned Memory to Virtual
                // Shared Memory".
                let bytes = ranks[r].task.bytes_out;
                if bytes > 0 {
                    let t0 = ctx.now();
                    if ranks[r].task.is_functional() {
                        let data = ranks[r]
                            .pinned_out
                            .to_bytes()
                            .expect("functional pinned buffer");
                        ranks[r]
                            .shm
                            .write(ctx, 0, &data[..bytes as usize])
                            .expect("shm write");
                    } else {
                        ctx.hold(node.config().memcpy_time(bytes));
                    }
                    let mut stats = h.stats.lock();
                    stats.rcv_copies += 1;
                    stats.copy_time += ctx.now().duration_since(t0);
                }
                ranks[r]
                    .resp
                    .send(ctx, Response::Ack)
                    .expect("resp queue open");
            }
            RequestKind::Rls => {
                released += 1;
                ranks[r]
                    .resp
                    .send(ctx, Response::Ack)
                    .expect("resp queue open");
            }
        }
    }

    // Free device resources.
    for rank in &ranks {
        let _ = cudas[rank.dev_idx].device().free(rank.dev_base);
    }
    h.done.open(ctx);
}

/// Enqueue one rank's complete pipeline into its stream: per iteration,
/// async H2D from pinned, the kernel sequence, async D2H into pinned.
fn flush_rank(ctx: &mut Ctx, cc: &gv_cuda::CudaContext, rank: &mut RankResources) {
    let task = &rank.task;
    for _ in 0..task.iterations {
        if task.bytes_in > 0 {
            cc.memcpy_h2d_async(
                ctx,
                rank.stream,
                &rank.pinned_in,
                rank.dev_base,
                task.bytes_in,
            )
            .expect("GVM H2D submit");
        }
        for k in &rank.kernels {
            cc.launch(ctx, rank.stream, k.clone()).expect("GVM launch");
        }
        if task.bytes_out > 0 {
            cc.memcpy_d2h_async(
                ctx,
                rank.stream,
                rank.dev_base.add(task.d2h_offset),
                &rank.pinned_out,
                task.bytes_out,
            )
            .expect("GVM D2H submit");
        }
    }
}

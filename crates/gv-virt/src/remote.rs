//! Remote GPU access — the related-work baseline (paper §II).
//!
//! Duato et al. [11] and gVirtuS [10] share GPUs by shipping CUDA calls
//! from GPU-less client nodes to a daemon on a GPU node over TCP/IP or
//! InfiniBand. The paper argues this "can result in communication
//! overheads in accessing GPUs from remote compute nodes" and that
//! "simultaneous execution of multiple GPU kernels is not discussed".
//! This module implements that architecture so the claim can be measured:
//!
//! * [`RemoteGpuDaemon`] runs on the GPU node: one context (created at
//!   daemon start), one stream per client, requests served FIFO;
//! * [`RemoteClient::run_task`] mirrors the VGPU client cycle, but every
//!   byte of input/output crosses a [`NetworkLink`] first, and — unlike
//!   the GVM — there is no barrier-flush: each client's work is submitted
//!   as it arrives (rCUDA semantics).

use std::cell::Cell;
use std::sync::Arc;

use gv_cuda::{CudaDevice, HostBuffer};
use gv_gpu::DevicePtr;
use gv_ipc::net::NetworkLink;
use gv_ipc::{MessageQueue, MqRegistry, Node};
use gv_kernels::GpuTask;
use gv_sim::{Ctx, Gate, SimDuration, Simulation};
use parking_lot::Mutex;

use crate::protocol::{Request, RequestKind, Response, ResponseKind, TaskRun};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Instance name (namespaces the request queues).
    pub name: String,
    /// Number of remote clients served.
    pub nclients: usize,
    /// Client status-poll backoff cap.
    pub poll_max: SimDuration,
}

impl RemoteConfig {
    /// Defaults for `nclients` clients.
    pub fn new(nclients: usize) -> Self {
        RemoteConfig {
            name: "rgpu".to_string(),
            nclients,
            poll_max: SimDuration::from_millis(4),
        }
    }
}

struct ClientSlot {
    resp: MessageQueue<Response>,
    stream: gv_gpu::StreamId,
    dev_base: DevicePtr,
    pinned_in: HostBuffer,
    pinned_out: HostBuffer,
    kernels: Vec<gv_gpu::KernelDesc>,
    task: GpuTask,
}

/// Handle to a running daemon: what clients connect through.
#[derive(Clone)]
pub struct RemoteGpuHandle {
    config: Arc<RemoteConfig>,
    link: NetworkLink,
    req_mq: MqRegistry<Request>,
    resp_mq: MqRegistry<Response>,
    /// Opens when the daemon finished initialization.
    pub ready: Gate,
    /// Opens when all clients released.
    pub done: Gate,
    tasks: Arc<Vec<GpuTask>>,
}

/// The remote-GPU daemon installer.
pub struct RemoteGpuDaemon;

impl RemoteGpuDaemon {
    /// Spawn the daemon on the GPU node.
    pub fn install(
        sim: &mut Simulation,
        gpu_node: &Node,
        cuda: &CudaDevice,
        link: NetworkLink,
        config: RemoteConfig,
        tasks: Vec<GpuTask>,
    ) -> RemoteGpuHandle {
        assert_eq!(tasks.len(), config.nclients);
        let handle = RemoteGpuHandle {
            config: Arc::new(config),
            link,
            req_mq: MqRegistry::new(gpu_node.config()),
            resp_mq: MqRegistry::new(gpu_node.config()),
            ready: Gate::new(),
            done: Gate::new(),
            tasks: Arc::new(tasks),
        };
        let h = handle.clone();
        let cuda = cuda.clone();
        sim.spawn(&h.config.name.clone(), move |ctx| daemon_main(ctx, h, cuda));
        handle
    }
}

fn daemon_main(ctx: &mut Ctx, h: RemoteGpuHandle, cuda: CudaDevice) {
    let cfg = &h.config;
    let cc = cuda.create_context(ctx, &format!("{}-ctx", cfg.name));
    let req_q = h
        .req_mq
        .create(&format!("/{}-req", cfg.name), None)
        .expect("queue name free");
    let mut slots: Vec<ClientSlot> = Vec::with_capacity(cfg.nclients);
    for r in 0..cfg.nclients {
        let task = h.tasks[r].clone();
        let resp = h
            .resp_mq
            .create(&format!("/{}-resp-{r}", cfg.name), None)
            .expect("queue name free");
        let stream = cc.stream_create();
        let dev_base = cc.malloc(task.device_bytes.max(1)).expect("daemon alloc");
        let kernels = task.bind_kernels(dev_base);
        slots.push(ClientSlot {
            resp,
            stream,
            dev_base,
            pinned_in: HostBuffer::opaque(task.bytes_in.max(1), true),
            pinned_out: HostBuffer::opaque(task.bytes_out.max(1), true),
            kernels,
            task,
        });
    }
    h.ready.open(ctx);

    let mut released = 0usize;
    while released < cfg.nclients {
        let Some(req) = req_q.recv(ctx) else { break };
        let r = req.rank;
        match req.kind {
            RequestKind::Req => {
                slots[r]
                    .resp
                    .send(ctx, Response::ack(req.seq))
                    .expect("resp open");
            }
            RequestKind::Snd => {
                // Input already crossed the wire (client-side cost); the
                // daemon submits its pipeline immediately — rCUDA-style
                // eager execution, no cross-client barrier.
                let slot = &mut slots[r];
                for _ in 0..slot.task.iterations {
                    if slot.task.bytes_in > 0 {
                        cc.memcpy_h2d_async(
                            ctx,
                            slot.stream,
                            &slot.pinned_in,
                            slot.dev_base,
                            slot.task.bytes_in,
                        )
                        .expect("daemon H2D");
                    }
                    for k in &slot.kernels {
                        cc.launch(ctx, slot.stream, k.clone())
                            .expect("daemon launch");
                    }
                    if slot.task.bytes_out > 0 {
                        cc.memcpy_d2h_async(
                            ctx,
                            slot.stream,
                            slot.dev_base.add(slot.task.d2h_offset),
                            &slot.pinned_out,
                            slot.task.bytes_out,
                        )
                        .expect("daemon D2H");
                    }
                }
                slots[r]
                    .resp
                    .send(ctx, Response::ack(req.seq))
                    .expect("resp open");
            }
            RequestKind::Str => {
                // Execution already started at SND; acknowledge.
                slots[r]
                    .resp
                    .send(ctx, Response::ack(req.seq))
                    .expect("resp open");
            }
            RequestKind::Stp => {
                let done = cc.stream_query(slots[r].stream);
                let resp = if done {
                    Response::ack(req.seq)
                } else {
                    Response::wait(req.seq)
                };
                slots[r].resp.send(ctx, resp).expect("resp open");
            }
            RequestKind::Rcv => {
                slots[r]
                    .resp
                    .send(ctx, Response::ack(req.seq))
                    .expect("resp open");
            }
            RequestKind::Rls => {
                released += 1;
                slots[r]
                    .resp
                    .send(ctx, Response::ack(req.seq))
                    .expect("resp open");
            }
        }
    }
    for slot in &slots {
        let _ = cuda.device().free(slot.dev_base);
    }
    h.done.open(ctx);
}

/// A client on a GPU-less node.
pub struct RemoteClient {
    rank: usize,
    handle: RemoteGpuHandle,
    req: MessageQueue<Request>,
    resp: MessageQueue<Response>,
    seq: Cell<u64>,
}

impl RemoteClient {
    /// Connect client `rank` (blocks until the daemon is up).
    pub fn connect(ctx: &mut Ctx, handle: &RemoteGpuHandle, rank: usize) -> RemoteClient {
        handle.ready.wait(ctx);
        let req = handle
            .req_mq
            .open(&format!("/{}-req", handle.config.name))
            .expect("daemon queue exists");
        let resp = handle
            .resp_mq
            .open(&format!("/{}-resp-{rank}", handle.config.name))
            .expect("daemon queue exists");
        RemoteClient {
            rank,
            handle: handle.clone(),
            req,
            resp,
            seq: Cell::new(0),
        }
    }

    fn call(&self, ctx: &mut Ctx, kind: RequestKind) -> ResponseKind {
        let seq = self.seq.get() + 1;
        self.seq.set(seq);
        // Every RPC costs a round trip on the wire.
        self.handle.link.send_forward(ctx, 64);
        self.req
            .send(ctx, Request::new(self.rank, kind, seq))
            .expect("daemon up");
        let r = self.resp.recv(ctx).expect("daemon response");
        self.handle.link.send_reverse(ctx, 64);
        r.kind
    }

    /// The full remote execution cycle, with Fig. 3 phase timestamps.
    pub fn run_task(&self, ctx: &mut Ctx) -> TaskRun {
        let task = self.handle.tasks[self.rank].clone();
        let start = ctx.now();
        self.call(ctx, RequestKind::Req);
        let init_done = ctx.now();
        // Ship the input over the interconnect, then SND.
        if task.bytes_in > 0 {
            self.handle.link.send_forward(ctx, task.bytes_in);
        }
        self.call(ctx, RequestKind::Snd);
        let data_in_done = ctx.now();
        self.call(ctx, RequestKind::Str);
        let mut backoff = SimDuration::from_micros(50);
        while self.call(ctx, RequestKind::Stp) != ResponseKind::Ack {
            ctx.hold(backoff);
            backoff = (backoff * 2).min(self.handle.config.poll_max);
        }
        let comp_done = ctx.now();
        self.call(ctx, RequestKind::Rcv);
        if task.bytes_out > 0 {
            self.handle.link.send_reverse(ctx, task.bytes_out);
        }
        let data_out_done = ctx.now();
        self.call(ctx, RequestKind::Rls);
        let end = ctx.now();
        TaskRun {
            rank: self.rank,
            start,
            init_done,
            data_in_done,
            comp_done,
            data_out_done,
            end,
        }
    }
}

/// Convenience: run `n` remote clients of `task` over `link`; returns the
/// group turnaround in ms.
pub fn remote_turnaround(
    cuda: &CudaDevice,
    sim: &mut Simulation,
    gpu_node: &Node,
    link: NetworkLink,
    task: &GpuTask,
    n: usize,
) -> Arc<Mutex<Vec<TaskRun>>> {
    let handle = RemoteGpuDaemon::install(
        sim,
        gpu_node,
        cuda,
        link,
        RemoteConfig::new(n),
        vec![task.clone(); n],
    );
    let runs: Arc<Mutex<Vec<TaskRun>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let runs = runs.clone();
        // Remote clients live on *other* nodes: plain simulation processes,
        // not pinned to this node's cores.
        sim.spawn(&format!("remote-client-{rank}"), move |ctx| {
            let client = RemoteClient::connect(ctx, &handle, rank);
            // Run the task fully BEFORE taking the collection lock: the
            // receiver of `.push(...)` is evaluated first, so an inline
            // `runs.lock().push(client.run_task(ctx))` would hold the host
            // mutex across simulated time and wedge every other client on
            // a real lock instead of a simulated one.
            let run = client.run_task(ctx);
            runs.lock().push(run);
        });
    }
    let h = handle.clone();
    let cuda = cuda.clone();
    sim.spawn("remote-supervisor", move |ctx| {
        h.done.wait(ctx);
        cuda.device().shutdown(ctx);
    });
    runs
}

//! # gv-virt — GPU resource virtualization for SPMD execution
//!
//! The paper's contribution: a user-space run-time layer that exposes one
//! **Virtual GPU** per CPU core so SPMD programs keep their 1:1
//! processor-to-accelerator view on nodes where many cores share one GPU.
//!
//! * [`gvm`] — the GPU Virtualization Manager: owns the single GPU context,
//!   per-rank shared-memory segments, response queues, CUDA streams, and
//!   pinned staging buffers; barriers `STR` requests and flushes all
//!   streams together for maximal overlap.
//! * [`client`] — the user-process API layer (`REQ/SND/STR/STP/RCV/RLS`).
//! * [`baseline`] — conventional direct sharing: per-process contexts,
//!   serialized by the device with context-switch costs (the comparison
//!   baseline of every figure).
//! * [`protocol`] — message vocabulary and the Fig. 3 phase timestamps.
//! * [`fault`] — deterministic fault injection: a seeded, serializable
//!   [`FaultPlan`] schedules message drops/delays/duplicates, shm
//!   corruption, device OOM and client aborts; the GVM recovers by
//!   evicting dead ranks and re-arming the `STR` barrier at reduced
//!   width, and clients recover by retrying with sequence-numbered
//!   idempotent requests.

#![warn(missing_docs)]

pub mod baseline;
pub mod client;
pub mod cluster;
pub mod fault;
pub mod gvm;
pub mod protocol;
pub mod quota;
pub mod remote;
pub mod sched;

pub use baseline::{run_direct, run_direct_abortable};
pub use client::{ClientPolicy, TaskError, VgpuClient};
pub use cluster::{
    plan, Cluster, ClusterConfig, ClusterHandle, ClusterPlan, ClusterStats, DeviceCap, PlacePolicy,
    PlanError, SessionResult, VgpuRequest,
};
pub use fault::{FaultPlan, FaultSpec, PlanParseError, QueueSel};
pub use gv_mem::{MemConfig, PipelineConfig};
pub use gvm::{FtConfig, Gvm, GvmConfig, GvmHandle, GvmStats};
pub use protocol::{Endpoints, NakReason, Request, RequestKind, Response, ResponseKind, TaskRun};
pub use quota::MemQuota;
pub use remote::{RemoteClient, RemoteConfig, RemoteGpuDaemon, RemoteGpuHandle};
pub use sched::{SchedPolicy, Scheduler};

#[cfg(test)]
mod tests {
    use super::*;
    use gv_cuda::CudaDevice;
    use gv_gpu::{DeviceConfig, GpuDevice};
    use gv_ipc::{Node, NodeConfig};
    use gv_kernels::{vecadd, Benchmark, BenchmarkId};
    use gv_sim::Simulation;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// End-to-end functional vecadd through the GVM: two SPMD ranks add
    /// different vectors and each gets its own correct result back.
    #[test]
    fn gvm_functional_vecadd_two_ranks() {
        let mut sim = Simulation::new();
        let cfg = DeviceConfig::tesla_c2070_paper();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());

        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..2)
            .map(|r| {
                let a: Vec<f32> = (0..256).map(|i| (i + r * 1000) as f32).collect();
                let b: Vec<f32> = (0..256).map(|i| (i * 2) as f32).collect();
                (a, b)
            })
            .collect();
        let tasks: Vec<_> = inputs
            .iter()
            .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
            .collect();

        let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(2), tasks);
        type Results = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
        let results: Results = Arc::new(Mutex::new(Vec::new()));
        for rank in 0..2 {
            let handle = handle.clone();
            let results = results.clone();
            node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect(ctx, &handle, rank);
                let (_run, out) = client.run_task(ctx);
                results.lock().push((rank, out.expect("functional output")));
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
        sim.run().unwrap();

        let results = results.lock();
        assert_eq!(results.len(), 2);
        for (rank, bytes) in results.iter() {
            let got = vecadd::decode_output(bytes);
            let (a, b) = &inputs[*rank];
            assert_eq!(got, vecadd::reference(a, b), "rank {rank} output wrong");
        }
    }

    /// The GVM must eliminate context switches entirely, while the
    /// baseline pays N-1 of them (paper Eq. 1 vs Eq. 4).
    #[test]
    fn gvm_eliminates_context_switches() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let mut sim = Simulation::new();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let tasks: Vec<_> = (0..3)
            .map(|_| Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 100))
            .collect();
        let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(3), tasks);
        for rank in 0..3 {
            let handle = handle.clone();
            node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect(ctx, &handle, rank);
                let _ = client.run_task(ctx);
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
        sim.run().unwrap();
        assert_eq!(device.stats().ctx_switches, 0);
        assert_eq!(handle.stats.lock().flushes, 1);
    }

    /// Fault tolerance enabled but no faults armed: every rank completes
    /// normally, nothing is evicted, and the functional result is intact.
    #[test]
    fn fault_tolerant_mode_without_faults_is_transparent() {
        let mut sim = Simulation::new();
        let cfg = DeviceConfig::tesla_c2070_paper();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..128).map(|i| (i * 3) as f32).collect();
        let tasks = vec![vecadd::functional_task(&cfg, &a, &b); 2];
        let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::fault_tolerant(2), tasks);
        let outs: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        for rank in 0..2 {
            let handle = handle.clone();
            let outs = outs.clone();
            node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect_with_policy(
                    ctx,
                    &handle,
                    rank,
                    client::ClientPolicy::with_timeout(gv_sim::SimDuration::from_millis(10), 3),
                );
                let (_run, out) = client.try_run_task(ctx).expect("fault-free run succeeds");
                outs.lock().push(out.expect("functional output"));
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
        sim.run().unwrap();
        let stats = handle.stats.lock();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.naks, 0);
        assert_eq!(stats.flushes, 1);
        let outs = outs.lock();
        assert_eq!(outs.len(), 2);
        for bytes in outs.iter() {
            assert_eq!(vecadd::decode_output(bytes), vecadd::reference(&a, &b));
        }
        // Every device byte reclaimed at shutdown.
        assert_eq!(device.with_memory(|m| m.used()), 0);
    }

    /// Baseline with N processes pays N-1 context switches and serializes.
    #[test]
    fn baseline_pays_context_switches() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let mut sim = Simulation::new();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let finished = Arc::new(Mutex::new(0usize));
        for rank in 0..3 {
            let cuda = cuda.clone();
            let cfg = cfg.clone();
            let device = device.clone();
            let finished = finished.clone();
            node.spawn_pinned(&mut sim, rank, &format!("direct-{rank}"), move |ctx| {
                let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 100);
                let (_run, _) = run_direct(ctx, &cuda, &task, rank);
                let mut f = finished.lock();
                *f += 1;
                if *f == 3 {
                    device.shutdown(ctx);
                }
            })
            .unwrap();
        }
        sim.run().unwrap();
        assert_eq!(device.stats().ctx_switches, 2);
    }

    /// Virtualized turnaround beats the baseline for several processes
    /// (the headline claim).
    #[test]
    fn virtualized_beats_baseline_at_n4() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let n = 4;

        // Baseline.
        let mut sim = Simulation::new();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let finished = Arc::new(Mutex::new(0usize));
        for rank in 0..n {
            let cuda = cuda.clone();
            let cfg = cfg.clone();
            let device = device.clone();
            let finished = finished.clone();
            node.spawn_pinned(&mut sim, rank, &format!("direct-{rank}"), move |ctx| {
                let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 20);
                let _ = run_direct(ctx, &cuda, &task, rank);
                let mut f = finished.lock();
                *f += 1;
                if *f == n {
                    device.shutdown(ctx);
                }
            })
            .unwrap();
        }
        let baseline_time = sim.run().unwrap().end_time;

        // Virtualized.
        let mut sim = Simulation::new();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let tasks: Vec<_> = (0..n)
            .map(|_| Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 20))
            .collect();
        let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(n), tasks);
        for rank in 0..n {
            let handle = handle.clone();
            node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect(ctx, &handle, rank);
                let _ = client.run_task(ctx);
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
        let virt_time = sim.run().unwrap().end_time;

        assert!(
            virt_time < baseline_time,
            "virtualized {virt_time} should beat baseline {baseline_time}"
        );
    }
}

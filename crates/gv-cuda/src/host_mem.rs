//! Host memory buffers: pageable vs pinned, functional vs timing-only.
//!
//! Pinned (page-locked) host memory transfers at full PCIe bandwidth and is
//! required for asynchronous copies — the GVM allocates pinned staging
//! buffers per process (paper §V). Timing-only experiments use *opaque*
//! buffers that carry a byte count but no storage, so hundreds of simulated
//! megabytes cost nothing on the real host.

use std::sync::Arc;

use parking_lot::Mutex;

/// A host-side buffer.
#[derive(Clone)]
pub struct HostBuffer {
    bytes: u64,
    pinned: bool,
    data: Option<Arc<Mutex<Vec<u8>>>>,
}

impl std::fmt::Debug for HostBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostBuffer")
            .field("bytes", &self.bytes)
            .field("pinned", &self.pinned)
            .field("functional", &self.data.is_some())
            .finish()
    }
}

impl HostBuffer {
    /// A timing-only (opaque) buffer of `bytes` bytes.
    pub fn opaque(bytes: u64, pinned: bool) -> Self {
        HostBuffer {
            bytes,
            pinned,
            data: None,
        }
    }

    /// A zero-filled functional buffer.
    pub fn zeroed(bytes: u64, pinned: bool) -> Self {
        HostBuffer {
            bytes,
            pinned,
            data: Some(Arc::new(Mutex::new(vec![0u8; bytes as usize]))),
        }
    }

    /// A functional buffer initialized from `data`.
    pub fn from_bytes(data: Vec<u8>, pinned: bool) -> Self {
        HostBuffer {
            bytes: data.len() as u64,
            pinned,
            data: Some(Arc::new(Mutex::new(data))),
        }
    }

    /// A functional buffer initialized from `f32`s (little-endian layout).
    pub fn from_f32(values: &[f32], pinned: bool) -> Self {
        Self::from_bytes(
            values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            pinned,
        )
    }

    /// A functional buffer initialized from `f64`s.
    pub fn from_f64(values: &[f64], pinned: bool) -> Self {
        Self::from_bytes(
            values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            pinned,
        )
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Is this pinned (page-locked) memory?
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Does this buffer carry real bytes?
    pub fn is_functional(&self) -> bool {
        self.data.is_some()
    }

    /// Shared storage handle (functional buffers only).
    pub(crate) fn storage(&self) -> Option<Arc<Mutex<Vec<u8>>>> {
        self.data.clone()
    }

    /// Snapshot contents as bytes (functional buffers only).
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        self.data.as_ref().map(|d| d.lock().clone())
    }

    /// Interpret contents as `f32`s (functional buffers only).
    pub fn to_f32(&self) -> Option<Vec<f32>> {
        self.to_bytes().map(|b| {
            b.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
    }

    /// Interpret contents as `f64`s (functional buffers only).
    pub fn to_f64(&self) -> Option<Vec<f64>> {
        self.to_bytes().map(|b| {
            b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect()
        })
    }

    /// Overwrite contents (functional buffers only; panics on size mismatch).
    pub fn fill_bytes(&self, data: &[u8]) {
        let storage = self
            .data
            .as_ref()
            .expect("fill_bytes on a timing-only buffer");
        let mut guard = storage.lock();
        assert_eq!(guard.len(), data.len(), "host buffer size mismatch");
        guard.copy_from_slice(data);
    }

    /// Overwrite a sub-range starting at `offset` (functional buffers
    /// only; panics when the range overruns the buffer). Chunked staging
    /// writes each span in place without touching the rest.
    pub fn fill_at(&self, offset: u64, data: &[u8]) {
        let storage = self.data.as_ref().expect("fill_at on a timing-only buffer");
        let mut guard = storage.lock();
        let start = offset as usize;
        let end = start
            .checked_add(data.len())
            .expect("fill_at range overflow");
        assert!(
            end <= guard.len(),
            "fill_at range {start}..{end} overruns buffer of {} bytes",
            guard.len()
        );
        guard[start..end].copy_from_slice(data);
    }

    /// Fill `out` from the sub-range starting at `offset` without
    /// allocating (functional buffers only; panics when the range overruns
    /// the buffer). The zero-copy shm backing reads through here.
    pub fn read_into(&self, offset: u64, out: &mut [u8]) {
        let storage = self
            .data
            .as_ref()
            .expect("read_into on a timing-only buffer");
        let guard = storage.lock();
        let start = offset as usize;
        let end = start.checked_add(out.len()).expect("read_into overflow");
        assert!(
            end <= guard.len(),
            "read_into {start}..{end} overruns buffer of {} bytes",
            guard.len()
        );
        out.copy_from_slice(&guard[start..end]);
    }

    /// Snapshot a sub-range as bytes (functional buffers only; `None` for
    /// timing-only buffers; panics when the range overruns the buffer).
    pub fn read_range(&self, offset: u64, len: u64) -> Option<Vec<u8>> {
        self.data.as_ref().map(|d| {
            let guard = d.lock();
            let start = offset as usize;
            let end = start
                .checked_add(len as usize)
                .expect("read_range overflow");
            assert!(
                end <= guard.len(),
                "read_range {start}..{end} overruns buffer of {} bytes",
                guard.len()
            );
            guard[start..end].to_vec()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opaque_carries_size_only() {
        let b = HostBuffer::opaque(1 << 30, true);
        assert_eq!(b.len(), 1 << 30);
        assert!(!b.is_functional());
        assert!(b.to_bytes().is_none());
    }

    #[test]
    fn f32_roundtrip() {
        let b = HostBuffer::from_f32(&[1.5, -2.25], false);
        assert_eq!(b.len(), 8);
        assert_eq!(b.to_f32().unwrap(), vec![1.5, -2.25]);
        assert!(!b.is_pinned());
    }

    #[test]
    fn f64_roundtrip() {
        let b = HostBuffer::from_f64(&[std::f64::consts::PI], true);
        assert_eq!(b.to_f64().unwrap(), vec![std::f64::consts::PI]);
    }

    #[test]
    fn fill_replaces_contents() {
        let b = HostBuffer::zeroed(4, true);
        b.fill_bytes(&[1, 2, 3, 4]);
        assert_eq!(b.to_bytes().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn fill_size_mismatch_panics() {
        HostBuffer::zeroed(4, true).fill_bytes(&[1, 2]);
    }

    #[test]
    fn fill_at_writes_span_in_place() {
        let b = HostBuffer::zeroed(8, true);
        b.fill_at(2, &[9, 8, 7]);
        assert_eq!(b.to_bytes().unwrap(), vec![0, 0, 9, 8, 7, 0, 0, 0]);
        assert_eq!(b.read_range(2, 3).unwrap(), vec![9, 8, 7]);
        assert!(HostBuffer::opaque(8, true).read_range(0, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "overruns buffer")]
    fn fill_at_overrun_panics() {
        HostBuffer::zeroed(4, true).fill_at(2, &[1, 2, 3]);
    }

    #[test]
    fn clones_share_storage() {
        let a = HostBuffer::zeroed(2, false);
        let b = a.clone();
        a.fill_bytes(&[8, 9]);
        assert_eq!(b.to_bytes().unwrap(), vec![8, 9]);
    }
}

//! Runtime error type.

use gv_gpu::{MemError, SubmitError};

/// Errors surfaced by the CUDA-like runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CudaError {
    /// Device memory allocation or access failed.
    Memory(MemError),
    /// Command submission failed.
    Submit(SubmitError),
    /// A host buffer was smaller than the requested transfer.
    HostBufferTooSmall {
        /// Bytes requested.
        requested: u64,
        /// Host buffer capacity.
        capacity: u64,
    },
    /// A functional transfer was requested on an opaque (timing-only) buffer.
    OpaqueHostBuffer,
}

impl From<MemError> for CudaError {
    fn from(e: MemError) -> Self {
        CudaError::Memory(e)
    }
}

impl From<SubmitError> for CudaError {
    fn from(e: SubmitError) -> Self {
        CudaError::Submit(e)
    }
}

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudaError::Memory(e) => write!(f, "cuda memory error: {e}"),
            CudaError::Submit(e) => write!(f, "cuda submit error: {e}"),
            CudaError::HostBufferTooSmall {
                requested,
                capacity,
            } => write!(
                f,
                "host buffer too small: requested {requested} B, capacity {capacity} B"
            ),
            CudaError::OpaqueHostBuffer => {
                write!(
                    f,
                    "functional transfer requested on a timing-only host buffer"
                )
            }
        }
    }
}

impl std::error::Error for CudaError {}

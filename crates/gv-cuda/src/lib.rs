//! # gv-cuda — CUDA-like runtime over the simulated GPU
//!
//! The slice of the CUDA runtime/driver API the paper's infrastructure
//! uses: contexts (creation serialized through a driver lock, switch costs
//! charged by the device), in-order streams, pageable/pinned host memory
//! ([`host_mem`]), synchronous and asynchronous copies, asynchronous kernel
//! launches, stream synchronization, and events ([`event`]).

#![warn(missing_docs)]

pub mod api;
pub mod error;
pub mod event;
pub mod host_mem;

pub use api::{BatchD2h, BatchH2d, CudaContext, CudaDevice};
pub use error::CudaError;
pub use event::CudaEvent;
pub use host_mem::HostBuffer;

//! The CUDA-like runtime API.
//!
//! Mirrors the slice of the CUDA 3.2 runtime the paper uses: context
//! creation (serialized through a driver lock and charged the calibrated
//! per-process cost), in-order streams, synchronous and asynchronous
//! copies (async requires pinned host memory, as on real hardware), kernel
//! launches (asynchronous, returning after the launch-call overhead), and
//! stream synchronization.

use std::collections::HashMap;
use std::sync::Arc;

use gv_gpu::{CommandHandle, CommandKind, DevicePtr, GpuCtxId, GpuDevice, KernelDesc, StreamId};
use gv_sim::{Ctx, Semaphore, SimDuration};
use parking_lot::Mutex;

use crate::error::CudaError;
use crate::host_mem::HostBuffer;

/// One member of a coalesced H2D batch copy
/// ([`CudaContext::memcpy_h2d_async_batch`]).
pub struct BatchH2d<'a> {
    /// Stream the member is ordered on.
    pub stream: StreamId,
    /// Pinned host source buffer.
    pub src: &'a HostBuffer,
    /// Byte offset of the payload within `src`.
    pub src_offset: u64,
    /// Device destination.
    pub dst: DevicePtr,
    /// Bytes to copy.
    pub bytes: u64,
}

/// One member of a coalesced D2H batch copy
/// ([`CudaContext::memcpy_d2h_async_batch`]).
pub struct BatchD2h<'a> {
    /// Stream the member is ordered on.
    pub stream: StreamId,
    /// Device source.
    pub src: DevicePtr,
    /// Pinned host destination buffer.
    pub dst: &'a HostBuffer,
    /// Byte offset within `dst` the payload lands at.
    pub dst_offset: u64,
    /// Bytes to copy.
    pub bytes: u64,
}

/// Runtime handle to a device, shared by all processes on the node.
#[derive(Clone)]
pub struct CudaDevice {
    device: GpuDevice,
    /// Serializes context creation through the driver, making N process
    /// initializations take N × `ctx_create` — the paper's Tinit.
    driver_lock: Semaphore,
}

impl CudaDevice {
    /// Wrap an installed GPU device.
    pub fn new(device: GpuDevice) -> Self {
        CudaDevice {
            device,
            driver_lock: Semaphore::new(1),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Create a GPU context for the calling process, charging the
    /// calibrated creation cost under the driver lock.
    pub fn create_context(&self, ctx: &mut Ctx, name: &str) -> CudaContext {
        let cost = self.device.config().ctx_switch;
        self.create_context_with_switch_cost(ctx, name, cost)
    }

    /// Like [`create_context`](Self::create_context) with an explicit
    /// context-switch cost (per-benchmark calibration from Table II).
    pub fn create_context_with_switch_cost(
        &self,
        ctx: &mut Ctx,
        name: &str,
        switch_cost: SimDuration,
    ) -> CudaContext {
        self.driver_lock.acquire(ctx);
        ctx.hold(self.device.config().ctx_create);
        let gctx = self
            .device
            .create_context_with_switch_cost(name, switch_cost);
        self.driver_lock.release(ctx);
        CudaContext {
            cuda: self.clone(),
            gctx,
            tails: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Create a context without charging creation time (the GVM pays it at
    /// boot, outside the measured task window — and tests use it freely).
    pub fn create_context_uncharged(&self, name: &str, switch_cost: SimDuration) -> CudaContext {
        let gctx = self
            .device
            .create_context_with_switch_cost(name, switch_cost);
        CudaContext {
            cuda: self.clone(),
            gctx,
            tails: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

/// A per-process GPU context: streams, memory, copies, launches.
#[derive(Clone)]
pub struct CudaContext {
    cuda: CudaDevice,
    gctx: GpuCtxId,
    /// Last command submitted per stream (stream synchronization target).
    tails: Arc<Mutex<HashMap<StreamId, CommandHandle>>>,
}

impl CudaContext {
    /// The raw context id.
    pub fn id(&self) -> GpuCtxId {
        self.gctx
    }

    /// The runtime handle.
    pub fn cuda(&self) -> &CudaDevice {
        &self.cuda
    }

    /// Create an in-order stream in this context.
    pub fn stream_create(&self) -> StreamId {
        self.cuda.device.create_stream(self.gctx)
    }

    /// Allocate device global memory.
    pub fn malloc(&self, bytes: u64) -> Result<DevicePtr, CudaError> {
        Ok(self.cuda.device.alloc(bytes)?)
    }

    /// Free device memory.
    pub fn free(&self, ptr: DevicePtr) -> Result<(), CudaError> {
        Ok(self.cuda.device.free(ptr)?)
    }

    fn remember_tail(&self, stream: StreamId, h: &CommandHandle) {
        self.tails.lock().insert(stream, h.clone());
    }

    /// `cudaMemcpyAsync(H2D)`: requires pinned host memory (as on hardware —
    /// async copies from pageable memory silently degrade; we reject them).
    pub fn memcpy_h2d_async(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: &HostBuffer,
        dst: DevicePtr,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        assert!(
            src.is_pinned(),
            "async H2D requires pinned host memory (use memcpy_h2d for pageable)"
        );
        self.h2d_common(ctx, stream, src, 0, dst, bytes)
    }

    /// `cudaMemcpyAsync(H2D)` of a sub-range: copies `bytes` starting at
    /// byte `src_offset` of the (pinned) host buffer to `dst`. Chunked
    /// staging issues one of these per span so host-side staging of span
    /// `i+1` overlaps the device-side transfer of span `i`.
    pub fn memcpy_h2d_async_at(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: &HostBuffer,
        src_offset: u64,
        dst: DevicePtr,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        assert!(
            src.is_pinned(),
            "async H2D requires pinned host memory (use memcpy_h2d for pageable)"
        );
        self.h2d_common(ctx, stream, src, src_offset, dst, bytes)
    }

    /// `cudaMemcpy(H2D)`: synchronous copy, any host memory kind.
    pub fn memcpy_h2d(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: &HostBuffer,
        dst: DevicePtr,
        bytes: u64,
    ) -> Result<(), CudaError> {
        let h = self.h2d_common(ctx, stream, src, 0, dst, bytes)?;
        h.wait(ctx);
        Ok(())
    }

    fn h2d_common(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: &HostBuffer,
        src_offset: u64,
        dst: DevicePtr,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        if src_offset
            .checked_add(bytes)
            .is_none_or(|end| end > src.len())
        {
            return Err(CudaError::HostBufferTooSmall {
                requested: src_offset.saturating_add(bytes),
                capacity: src.len(),
            });
        }
        let data = src.storage().map(|s| {
            let guard = s.lock();
            let start = src_offset as usize;
            Arc::new(guard[start..start + bytes as usize].to_vec())
        });
        let h = self.cuda.device.submit(
            ctx,
            self.gctx,
            stream,
            CommandKind::CopyH2D {
                dst,
                bytes,
                data,
                pinned: src.is_pinned(),
            },
        )?;
        self.remember_tail(stream, &h);
        Ok(h)
    }

    /// Submit several pinned H2D sub-range copies as **one coalesced DMA
    /// batch** (see [`GpuDevice::submit_batch`]): members that run
    /// back-to-back on the copy engine pay the DMA setup latency once,
    /// while every member keeps its own handle, stream ordering, and
    /// completion fan-out. All members are validated (pinned source, span
    /// within the buffer) before anything is enqueued.
    pub fn memcpy_h2d_async_batch(
        &self,
        ctx: &mut Ctx,
        items: &[BatchH2d<'_>],
    ) -> Result<Vec<CommandHandle>, CudaError> {
        let mut cmds = Vec::with_capacity(items.len());
        for it in items {
            assert!(
                it.src.is_pinned(),
                "async H2D requires pinned host memory (use memcpy_h2d for pageable)"
            );
            if it
                .src_offset
                .checked_add(it.bytes)
                .is_none_or(|end| end > it.src.len())
            {
                return Err(CudaError::HostBufferTooSmall {
                    requested: it.src_offset.saturating_add(it.bytes),
                    capacity: it.src.len(),
                });
            }
            let data = it.src.storage().map(|s| {
                let guard = s.lock();
                let start = it.src_offset as usize;
                Arc::new(guard[start..start + it.bytes as usize].to_vec())
            });
            cmds.push((
                it.stream,
                CommandKind::CopyH2D {
                    dst: it.dst,
                    bytes: it.bytes,
                    data,
                    pinned: true,
                },
            ));
        }
        let handles = self.cuda.device.submit_batch(ctx, self.gctx, cmds)?;
        for (it, h) in items.iter().zip(&handles) {
            self.remember_tail(it.stream, h);
        }
        Ok(handles)
    }

    /// Submit several pinned D2H sub-range copies as one coalesced DMA
    /// batch; the D2H counterpart of
    /// [`memcpy_h2d_async_batch`](Self::memcpy_h2d_async_batch).
    pub fn memcpy_d2h_async_batch(
        &self,
        ctx: &mut Ctx,
        items: &[BatchD2h<'_>],
    ) -> Result<Vec<CommandHandle>, CudaError> {
        let mut cmds = Vec::with_capacity(items.len());
        for it in items {
            assert!(
                it.dst.is_pinned(),
                "async D2H requires pinned host memory (use memcpy_d2h for pageable)"
            );
            if it
                .dst_offset
                .checked_add(it.bytes)
                .is_none_or(|end| end > it.dst.len())
            {
                return Err(CudaError::HostBufferTooSmall {
                    requested: it.dst_offset.saturating_add(it.bytes),
                    capacity: it.dst.len(),
                });
            }
            cmds.push((
                it.stream,
                CommandKind::CopyD2H {
                    src: it.src,
                    bytes: it.bytes,
                    sink: it.dst.storage(),
                    sink_offset: it.dst_offset,
                    pinned: true,
                },
            ));
        }
        let handles = self.cuda.device.submit_batch(ctx, self.gctx, cmds)?;
        for (it, h) in items.iter().zip(&handles) {
            self.remember_tail(it.stream, h);
        }
        Ok(handles)
    }

    /// `cudaMemcpyAsync(D2H)`: requires pinned host memory.
    pub fn memcpy_d2h_async(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: &HostBuffer,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        assert!(
            dst.is_pinned(),
            "async D2H requires pinned host memory (use memcpy_d2h for pageable)"
        );
        self.d2h_common(ctx, stream, src, dst, 0, bytes)
    }

    /// `cudaMemcpyAsync(D2H)` of a sub-range: copies `bytes` from `src`
    /// into the (pinned) host buffer starting at byte `dst_offset`. The
    /// flush path issues one of these per chunk so early chunks land while
    /// later stream work is still running.
    pub fn memcpy_d2h_async_at(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: &HostBuffer,
        dst_offset: u64,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        assert!(
            dst.is_pinned(),
            "async D2H requires pinned host memory (use memcpy_d2h for pageable)"
        );
        self.d2h_common(ctx, stream, src, dst, dst_offset, bytes)
    }

    /// `cudaMemcpy(D2H)`: synchronous copy, any host memory kind.
    pub fn memcpy_d2h(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: &HostBuffer,
        bytes: u64,
    ) -> Result<(), CudaError> {
        let h = self.d2h_common(ctx, stream, src, dst, 0, bytes)?;
        h.wait(ctx);
        Ok(())
    }

    fn d2h_common(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: &HostBuffer,
        dst_offset: u64,
        bytes: u64,
    ) -> Result<CommandHandle, CudaError> {
        if dst_offset
            .checked_add(bytes)
            .is_none_or(|end| end > dst.len())
        {
            return Err(CudaError::HostBufferTooSmall {
                requested: dst_offset.saturating_add(bytes),
                capacity: dst.len(),
            });
        }
        let h = self.cuda.device.submit(
            ctx,
            self.gctx,
            stream,
            CommandKind::CopyD2H {
                src,
                bytes,
                sink: dst.storage(),
                sink_offset: dst_offset,
                pinned: dst.is_pinned(),
            },
        )?;
        self.remember_tail(stream, &h);
        Ok(h)
    }

    /// `cudaMemcpyAsync(D2D)`: device-to-device copy within this context.
    pub fn memcpy_d2d_async(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: DevicePtr,
        bytes: u64,
        functional: bool,
    ) -> Result<CommandHandle, CudaError> {
        let h = self.cuda.device.submit(
            ctx,
            self.gctx,
            stream,
            CommandKind::CopyD2D {
                src,
                dst,
                bytes,
                functional,
            },
        )?;
        self.remember_tail(stream, &h);
        Ok(h)
    }

    /// `cudaMemcpy(D2D)`: synchronous device-to-device copy.
    pub fn memcpy_d2d(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        src: DevicePtr,
        dst: DevicePtr,
        bytes: u64,
        functional: bool,
    ) -> Result<(), CudaError> {
        let h = self.memcpy_d2d_async(ctx, stream, src, dst, bytes, functional)?;
        h.wait(ctx);
        Ok(())
    }

    /// Launch a kernel into `stream`. Asynchronous: the call occupies the
    /// host for the launch overhead (the paper's 0.038 ms `Tcomp` artifact
    /// for VectorAdd), then returns a handle.
    pub fn launch(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        kernel: KernelDesc,
    ) -> Result<CommandHandle, CudaError> {
        ctx.hold(self.cuda.device.config().kernel_launch_overhead);
        let h = self
            .cuda
            .device
            .submit(ctx, self.gctx, stream, CommandKind::Kernel(kernel))?;
        self.remember_tail(stream, &h);
        Ok(h)
    }

    /// Launch several kernels as **one grouped submission** that amortizes
    /// the host-side launch-call overhead: the calling process is held for
    /// a single `kernel_launch_overhead` for the whole group (the CUDA-
    /// graph / batched-launch amortization), then all kernels enqueue under
    /// one scheduler lock and one wake-up. Device-side semantics are
    /// unchanged — each kernel keeps its own stream ordering, window slot,
    /// and completion handle.
    pub fn launch_batch(
        &self,
        ctx: &mut Ctx,
        items: &[(StreamId, KernelDesc)],
    ) -> Result<Vec<CommandHandle>, CudaError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        ctx.hold(self.cuda.device.config().kernel_launch_overhead);
        let cmds = items
            .iter()
            .map(|(stream, kernel)| (*stream, CommandKind::Kernel(kernel.clone())))
            .collect();
        let handles = self.cuda.device.submit_batch(ctx, self.gctx, cmds)?;
        for ((stream, _), h) in items.iter().zip(&handles) {
            self.remember_tail(*stream, h);
        }
        Ok(handles)
    }

    /// `cudaStreamSynchronize`: block until everything submitted to
    /// `stream` so far has completed.
    pub fn stream_synchronize(&self, ctx: &mut Ctx, stream: StreamId) {
        let tail = self.tails.lock().get(&stream).cloned();
        if let Some(h) = tail {
            h.wait(ctx);
        }
    }

    /// `cudaStreamQuery`: has everything submitted to `stream` completed?
    pub fn stream_query(&self, stream: StreamId) -> bool {
        match self.tails.lock().get(&stream) {
            Some(h) => h.is_done(),
            None => true,
        }
    }

    /// The last command submitted to `stream`, if any (event recording).
    pub fn stream_tail(&self, stream: StreamId) -> Option<CommandHandle> {
        self.tails.lock().get(&stream).cloned()
    }

    /// Synchronize every stream this context has touched.
    pub fn synchronize_all(&self, ctx: &mut Ctx) {
        let tails: Vec<CommandHandle> = self.tails.lock().values().cloned().collect();
        for h in tails {
            h.wait(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::DeviceConfig;
    use gv_sim::Simulation;

    fn setup() -> (Simulation, CudaDevice) {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        (sim, CudaDevice::new(dev))
    }

    #[test]
    fn context_creation_serializes_and_charges() {
        let (mut sim, cuda) = setup();
        for i in 0..2 {
            let cuda = cuda.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                let _cc = cuda.create_context(ctx, "c");
                // test_tiny ctx_create = 10 ms; serialized: 10 or 20 ms.
                let t = ctx.now().as_millis_f64();
                assert!((t - 10.0).abs() < 1e-6 || (t - 20.0).abs() < 1e-6, "t={t}");
                cuda.device().shutdown(ctx);
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn full_execution_cycle_fig3() {
        // The paper's Fig. 3 cycle: init → send → compute → retrieve.
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let t_init = ctx.now();
            let stream = cc.stream_create();
            let dbuf = cc.malloc(1 << 20).unwrap();
            let hin = HostBuffer::opaque(1 << 20, false);
            let hout = HostBuffer::opaque(1 << 20, false);
            cc.memcpy_h2d(ctx, stream, &hin, dbuf, 1 << 20).unwrap();
            let t_in = ctx.now();
            let mut k = KernelDesc::new("k", 2, 64).regs(1);
            k.block_demand_cycles = 1.0e6;
            let kh = cc.launch(ctx, stream, k).unwrap();
            kh.wait(ctx);
            let t_comp = ctx.now();
            cc.memcpy_d2h(ctx, stream, dbuf, &hout, 1 << 20).unwrap();
            let t_out = ctx.now();
            assert!(t_init < t_in && t_in < t_comp && t_comp < t_out);
            // Pageable H2D at 0.5 GB/s: 1 MiB ≈ 2.098 ms.
            let d_in = t_in.duration_since(t_init).as_millis_f64();
            assert!((d_in - 2.098).abs() < 0.01, "d_in = {d_in}");
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn async_pipeline_overlaps_streams() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let t0 = ctx.now();
            let s1 = cc.stream_create();
            let s2 = cc.stream_create();
            let b1 = cc.malloc(4 << 20).unwrap();
            let b2 = cc.malloc(4 << 20).unwrap();
            let hin = HostBuffer::opaque(4 << 20, true);
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 4.0e6; // 16 ms at eff 1/4
                                           // Submit both pipelines back-to-back.
            cc.memcpy_h2d_async(ctx, s1, &hin, b1, 4 << 20).unwrap();
            cc.launch(ctx, s1, k.clone()).unwrap();
            cc.memcpy_h2d_async(ctx, s2, &hin, b2, 4 << 20).unwrap();
            cc.launch(ctx, s2, k).unwrap();
            cc.stream_synchronize(ctx, s1);
            cc.stream_synchronize(ctx, s2);
            let t = ctx.now().duration_since(t0).as_millis_f64();
            // Serial would be ≈ 2×(4.2 + 16) ≈ 40.4 ms; overlap of copy2
            // with kernel1 and concurrent kernels give ≈ 4.2+4.2+16 ≈ 24.6.
            assert!(t < 27.0, "expected overlap, got {t} ms");
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn stream_query_reflects_completion() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            assert!(cc.stream_query(s)); // nothing submitted
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e6;
            let h = cc.launch(ctx, s, k).unwrap();
            assert!(!cc.stream_query(s));
            h.wait(ctx);
            assert!(cc.stream_query(s));
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn functional_data_flows_end_to_end() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let dbuf = cc.malloc(16).unwrap();
            let hin = HostBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0], true);
            let hout = HostBuffer::zeroed(16, true);
            cc.memcpy_h2d(ctx, s, &hin, dbuf, 16).unwrap();
            cc.memcpy_d2h(ctx, s, dbuf, &hout, 16).unwrap();
            assert_eq!(hout.to_f32().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn chunked_offset_copies_roundtrip() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let dbuf = cc.malloc(16).unwrap();
            let hin = HostBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0], true);
            let hout = HostBuffer::zeroed(16, true);
            // Two 8-byte chunks each way, offsets in lockstep.
            cc.memcpy_h2d_async_at(ctx, s, &hin, 0, dbuf, 8).unwrap();
            cc.memcpy_h2d_async_at(ctx, s, &hin, 8, dbuf.add(8), 8)
                .unwrap();
            cc.memcpy_d2h_async_at(ctx, s, dbuf, &hout, 0, 8).unwrap();
            let h = cc
                .memcpy_d2h_async_at(ctx, s, dbuf.add(8), &hout, 8, 8)
                .unwrap();
            h.wait(ctx);
            assert_eq!(hout.to_f32().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
            // An overrunning span is rejected up front.
            let err = cc
                .memcpy_h2d_async_at(ctx, s, &hin, 12, dbuf, 8)
                .unwrap_err();
            assert!(matches!(err, CudaError::HostBufferTooSmall { .. }));
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn batched_copies_carry_data_and_fuse() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s1 = cc.stream_create();
            let s2 = cc.stream_create();
            let d1 = cc.malloc(16).unwrap();
            let d2 = cc.malloc(16).unwrap();
            let hin = HostBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0], true);
            let hs = cc
                .memcpy_h2d_async_batch(
                    ctx,
                    &[
                        BatchH2d {
                            stream: s1,
                            src: &hin,
                            src_offset: 0,
                            dst: d1,
                            bytes: 8,
                        },
                        BatchH2d {
                            stream: s2,
                            src: &hin,
                            src_offset: 8,
                            dst: d2,
                            bytes: 8,
                        },
                    ],
                )
                .unwrap();
            assert_eq!(hs.len(), 2);
            assert_eq!(hs[1].id, hs[0].id + 1, "consecutive command ids");
            for h in &hs {
                h.wait(ctx);
            }
            let o1 = HostBuffer::zeroed(8, true);
            let o2 = HostBuffer::zeroed(8, true);
            let ds = cc
                .memcpy_d2h_async_batch(
                    ctx,
                    &[
                        BatchD2h {
                            stream: s1,
                            src: d1,
                            dst: &o1,
                            dst_offset: 0,
                            bytes: 8,
                        },
                        BatchD2h {
                            stream: s2,
                            src: d2,
                            dst: &o2,
                            dst_offset: 0,
                            bytes: 8,
                        },
                    ],
                )
                .unwrap();
            for h in &ds {
                h.wait(ctx);
            }
            assert_eq!(o1.to_f32().unwrap(), vec![1.0, 2.0]);
            assert_eq!(o2.to_f32().unwrap(), vec![3.0, 4.0]);
            // Each direction fused its second member behind the first.
            assert_eq!(cuda.device().stats().fused_dma_ops, 2);
            // A batch with an overrunning member enqueues nothing.
            let err = cc
                .memcpy_h2d_async_batch(
                    ctx,
                    &[BatchH2d {
                        stream: s1,
                        src: &hin,
                        src_offset: 12,
                        dst: d1,
                        bytes: 8,
                    }],
                )
                .unwrap_err();
            assert!(matches!(err, CudaError::HostBufferTooSmall { .. }));
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn launch_batch_charges_one_launch_overhead() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let streams: Vec<_> = (0..4).map(|_| cc.stream_create()).collect();
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e6;
            let t0 = ctx.now();
            let items: Vec<_> = streams.iter().map(|&s| (s, k.clone())).collect();
            let hs = cc.launch_batch(ctx, &items).unwrap();
            // The host is held for exactly ONE launch overhead (5 µs on
            // test_tiny), not four.
            let held = ctx.now().duration_since(t0);
            assert_eq!(held, cuda.device().config().kernel_launch_overhead);
            assert_eq!(hs.len(), 4);
            for h in &hs {
                h.wait(ctx);
            }
            assert_eq!(cuda.device().stats().kernels_completed, 4);
            assert!(cc.launch_batch(ctx, &[]).unwrap().is_empty());
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn oversized_copy_rejected() {
        let (mut sim, cuda) = setup();
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let dbuf = cc.malloc(1024).unwrap();
            let hin = HostBuffer::opaque(64, false);
            let err = cc.memcpy_h2d(ctx, s, &hin, dbuf, 128).unwrap_err();
            assert!(matches!(err, CudaError::HostBufferTooSmall { .. }));
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }
}

#[cfg(test)]
mod d2d_tests {
    use super::*;
    use gv_gpu::{DeviceConfig, GpuDevice};
    use gv_sim::Simulation;

    #[test]
    fn d2d_copies_functionally_and_costs_dram_time() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let cuda = CudaDevice::new(dev);
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let a = cc.malloc(1 << 20).unwrap();
            let b = cc.malloc(1 << 20).unwrap();
            let hin = HostBuffer::from_f32(&[1.5, 2.5, 3.5], true);
            cc.memcpy_h2d(ctx, s, &hin, a, 12).unwrap();
            let t0 = ctx.now();
            cc.memcpy_d2d(ctx, s, a, b, 1 << 20, true).unwrap();
            // test_tiny DRAM = 10 GB/s; 2 passes over 1 MiB ≈ 0.21 ms.
            let dt = ctx.now().duration_since(t0).as_millis_f64();
            assert!((dt - 0.211).abs() < 0.02, "D2D took {dt} ms");
            let hout = HostBuffer::zeroed(12, true);
            cc.memcpy_d2h(ctx, s, b, &hout, 12).unwrap();
            assert_eq!(hout.to_f32().unwrap(), vec![1.5, 2.5, 3.5]);
            assert_eq!(cuda.device().stats().d2d_transfers, 1);
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn d2d_validates_both_ranges() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let cuda = CudaDevice::new(dev);
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let a = cc.malloc(512).unwrap();
            let b = cc.malloc(64).unwrap(); // rounds up to one 256 B unit
                                            // dst too small for a 512 B copy
            assert!(cc.memcpy_d2d(ctx, s, a, b, 512, false).is_err());
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }
}

//! CUDA-like events.
//!
//! An event recorded into an in-order stream completes once everything
//! submitted to that stream *before the record* has completed — which, for
//! in-order streams, is exactly the completion of the stream's tail command
//! at record time. The GVM's `STP` status query is built on this.

use gv_gpu::{CommandHandle, StreamId};
use gv_sim::Ctx;

use crate::api::CudaContext;

/// A recorded event.
#[derive(Clone, Debug)]
pub struct CudaEvent {
    /// Tail of the stream at record time; `None` = stream was empty.
    tail: Option<CommandHandle>,
    stream: StreamId,
}

impl CudaEvent {
    /// `cudaEventRecord`: capture the current tail of `stream`.
    pub fn record(cc: &CudaContext, stream: StreamId) -> CudaEvent {
        CudaEvent {
            tail: cc.stream_tail(stream),
            stream,
        }
    }

    /// The stream this event was recorded into.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// `cudaEventQuery`: has all work preceding the record completed?
    pub fn query(&self) -> bool {
        self.tail.as_ref().map(|h| h.is_done()).unwrap_or(true)
    }

    /// `cudaEventSynchronize`: block until the event completes.
    pub fn synchronize(&self, ctx: &mut Ctx) {
        if let Some(h) = &self.tail {
            h.wait(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CudaDevice;
    use gv_gpu::{DeviceConfig, GpuDevice, KernelDesc};
    use gv_sim::Simulation;

    #[test]
    fn event_on_empty_stream_is_complete() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let cuda = CudaDevice::new(dev);
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let ev = CudaEvent::record(&cc, s);
            assert!(ev.query());
            ev.synchronize(ctx); // must not block
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn event_completes_with_preceding_work() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let cuda = CudaDevice::new(dev);
        sim.spawn("p", move |ctx| {
            let cc = cuda.create_context(ctx, "p");
            let s = cc.stream_create();
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e6;
            cc.launch(ctx, s, k.clone()).unwrap();
            let ev = CudaEvent::record(&cc, s);
            assert!(!ev.query());
            // Later work does not hold the event back.
            cc.launch(ctx, s, k).unwrap();
            ev.synchronize(ctx);
            assert!(ev.query());
            assert!(!cc.stream_query(s)); // second kernel still running
            cc.stream_synchronize(ctx, s);
            cuda.device().shutdown(ctx);
        });
        sim.run().unwrap();
    }
}

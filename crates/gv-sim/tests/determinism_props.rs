//! Property tests for the simulation kernel: identical programs produce
//! identical schedules, and synchronization primitives conserve work.

use std::sync::Arc;

use gv_sim::{RecvTimeout, Semaphore, SimBarrier, SimChannel, SimDuration, Simulation};
use parking_lot::Mutex;
use proptest::prelude::*;

/// A producer sending at the given microsecond gaps into a consumer that
/// does timed receives; return the consumer's `(time_ns, outcome)` trace.
fn run_timed_recv(gaps: &[u64], timeout_us: u64) -> Vec<(u64, String)> {
    let mut sim = Simulation::new();
    let chan: SimChannel<u64> = SimChannel::unbounded();
    let trace: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let tx = chan.clone();
    let gaps_tx = gaps.to_vec();
    sim.spawn("producer", move |ctx| {
        for (i, &gap) in gaps_tx.iter().enumerate() {
            ctx.hold(SimDuration::from_micros(gap));
            let _ = tx.send(ctx, i as u64);
        }
        tx.close(ctx);
    });
    let n = gaps.len();
    let trace2 = trace.clone();
    sim.spawn("consumer", move |ctx| {
        let mut got = 0usize;
        // Bounded by total messages plus the timeouts it can possibly see.
        while got < n {
            let out = match chan.recv_timeout(ctx, SimDuration::from_micros(timeout_us)) {
                RecvTimeout::Msg(v) => {
                    got += 1;
                    format!("msg {v}")
                }
                RecvTimeout::TimedOut => "timeout".to_string(),
                RecvTimeout::Closed => break,
            };
            trace2.lock().push((ctx.now().as_nanos(), out));
        }
    });
    sim.run().unwrap();
    let t = trace.lock().clone();
    t
}

/// Run a program of per-process hold sequences; return the observed
/// completion order and end time.
fn run_program(holds: &[Vec<u64>]) -> (Vec<usize>, u64) {
    let mut sim = Simulation::new();
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    for (i, seq) in holds.iter().enumerate() {
        let seq = seq.clone();
        let order = order.clone();
        sim.spawn(&format!("p{i}"), move |ctx| {
            for &us in &seq {
                ctx.hold(SimDuration::from_micros(us));
            }
            order.lock().push(i);
        });
    }
    let summary = sim.run().unwrap();
    let order = order.lock().clone();
    (order, summary.end_time.as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re-running the same program yields the identical schedule: the
    /// engine is deterministic despite being built on OS threads.
    #[test]
    fn schedules_are_reproducible(
        holds in prop::collection::vec(prop::collection::vec(0u64..500, 0..8), 1..6)
    ) {
        let a = run_program(&holds);
        let b = run_program(&holds);
        prop_assert_eq!(a, b);
    }

    /// End time equals the maximum per-process hold total (processes are
    /// independent), regardless of interleaving.
    #[test]
    fn end_time_is_max_of_sums(
        holds in prop::collection::vec(prop::collection::vec(0u64..500, 0..8), 1..6)
    ) {
        let (_, end_ns) = run_program(&holds);
        let want: u64 = holds
            .iter()
            .map(|seq| seq.iter().sum::<u64>() * 1_000)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(end_ns, want);
    }

    /// A k-server semaphore over n identical jobs behaves like a makespan
    /// scheduler: total time = ceil(n / k) × job (work conservation).
    #[test]
    fn semaphore_conserves_work(jobs in 1usize..12, permits in 1usize..4, job_ms in 1u64..20) {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(permits);
        for i in 0..jobs {
            let sem = sem.clone();
            sim.spawn(&format!("j{i}"), move |ctx| {
                sem.acquire(ctx);
                ctx.hold(SimDuration::from_millis(job_ms));
                sem.release(ctx);
            });
        }
        let end = sim.run().unwrap().end_time.as_nanos();
        let waves = jobs.div_ceil(permits) as u64;
        prop_assert_eq!(end, waves * job_ms * 1_000_000);
    }

    /// Timed receives are part of the deterministic schedule: the same
    /// producer gaps and the same timeout replay the identical
    /// `(virtual-time, outcome)` trace — including which polls time out —
    /// and every message is eventually delivered exactly once, in order.
    #[test]
    fn timed_receives_replay_identically(
        gaps in prop::collection::vec(0u64..300, 1..10),
        timeout_us in 1u64..200,
    ) {
        let a = run_timed_recv(&gaps, timeout_us);
        let b = run_timed_recv(&gaps, timeout_us);
        prop_assert_eq!(&a, &b);
        let msgs: Vec<&String> = a.iter()
            .map(|(_, s)| s)
            .filter(|s| s.starts_with("msg"))
            .collect();
        let want: Vec<String> = (0..gaps.len()).map(|i| format!("msg {i}")).collect();
        prop_assert_eq!(msgs, want.iter().collect::<Vec<_>>());
    }

    /// A barrier releases everyone exactly at the last arrival, for any
    /// arrival pattern.
    #[test]
    fn barrier_release_time_is_last_arrival(arrivals in prop::collection::vec(0u64..1000, 2..8)) {
        let n = arrivals.len();
        let mut sim = Simulation::new();
        let bar = SimBarrier::new(n);
        let releases: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let last = *arrivals.iter().max().unwrap();
        for (i, &a) in arrivals.iter().enumerate() {
            let bar = bar.clone();
            let releases = releases.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.hold(SimDuration::from_micros(a));
                bar.wait(ctx);
                releases.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run().unwrap();
        let releases = releases.lock().clone();
        prop_assert_eq!(releases.len(), n);
        for r in releases {
            prop_assert_eq!(r, last * 1_000);
        }
    }
}

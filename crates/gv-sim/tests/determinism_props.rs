//! Property tests for the simulation kernel: identical programs produce
//! identical schedules, and synchronization primitives conserve work.

use std::sync::Arc;

use gv_sim::{Semaphore, SimBarrier, SimDuration, Simulation};
use parking_lot::Mutex;
use proptest::prelude::*;

/// Run a program of per-process hold sequences; return the observed
/// completion order and end time.
fn run_program(holds: &[Vec<u64>]) -> (Vec<usize>, u64) {
    let mut sim = Simulation::new();
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    for (i, seq) in holds.iter().enumerate() {
        let seq = seq.clone();
        let order = order.clone();
        sim.spawn(&format!("p{i}"), move |ctx| {
            for &us in &seq {
                ctx.hold(SimDuration::from_micros(us));
            }
            order.lock().push(i);
        });
    }
    let summary = sim.run().unwrap();
    let order = order.lock().clone();
    (order, summary.end_time.as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re-running the same program yields the identical schedule: the
    /// engine is deterministic despite being built on OS threads.
    #[test]
    fn schedules_are_reproducible(
        holds in prop::collection::vec(prop::collection::vec(0u64..500, 0..8), 1..6)
    ) {
        let a = run_program(&holds);
        let b = run_program(&holds);
        prop_assert_eq!(a, b);
    }

    /// End time equals the maximum per-process hold total (processes are
    /// independent), regardless of interleaving.
    #[test]
    fn end_time_is_max_of_sums(
        holds in prop::collection::vec(prop::collection::vec(0u64..500, 0..8), 1..6)
    ) {
        let (_, end_ns) = run_program(&holds);
        let want: u64 = holds
            .iter()
            .map(|seq| seq.iter().sum::<u64>() * 1_000)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(end_ns, want);
    }

    /// A k-server semaphore over n identical jobs behaves like a makespan
    /// scheduler: total time = ceil(n / k) × job (work conservation).
    #[test]
    fn semaphore_conserves_work(jobs in 1usize..12, permits in 1usize..4, job_ms in 1u64..20) {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(permits);
        for i in 0..jobs {
            let sem = sem.clone();
            sim.spawn(&format!("j{i}"), move |ctx| {
                sem.acquire(ctx);
                ctx.hold(SimDuration::from_millis(job_ms));
                sem.release(ctx);
            });
        }
        let end = sim.run().unwrap().end_time.as_nanos();
        let waves = jobs.div_ceil(permits) as u64;
        prop_assert_eq!(end, waves * job_ms * 1_000_000);
    }

    /// A barrier releases everyone exactly at the last arrival, for any
    /// arrival pattern.
    #[test]
    fn barrier_release_time_is_last_arrival(arrivals in prop::collection::vec(0u64..1000, 2..8)) {
        let n = arrivals.len();
        let mut sim = Simulation::new();
        let bar = SimBarrier::new(n);
        let releases: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let last = *arrivals.iter().max().unwrap();
        for (i, &a) in arrivals.iter().enumerate() {
            let bar = bar.clone();
            let releases = releases.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.hold(SimDuration::from_micros(a));
                bar.wait(ctx);
                releases.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run().unwrap();
        let releases = releases.lock().clone();
        prop_assert_eq!(releases.len(), n);
        for r in releases {
            prop_assert_eq!(r, last * 1_000);
        }
    }
}

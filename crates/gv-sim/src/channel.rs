//! Blocking message channels between simulation processes.
//!
//! [`SimChannel`] is an MPMC queue that blocks in *simulated* time: `recv`
//! on an empty channel and `send` on a full bounded channel park the calling
//! process until a counterpart operation occurs. The paper's POSIX message
//! queues between user processes and the GVM are built on this.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::kernel::{Pid, WaitKind, WakeReason};
use crate::process::Ctx;
use crate::time::SimDuration;

/// Error returned when sending on a closed channel; carries the value back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send on closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Outcome of [`SimChannel::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// A message arrived within the window.
    Msg(T),
    /// The channel was closed and drained before the window elapsed.
    Closed,
    /// The window elapsed with no message.
    TimedOut,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    /// One clock stamp per queued message (parallel to `queue`), `None`
    /// while analysis recording is off. Receiving a message joins the
    /// sender's stamped clock even when no park/unpark was involved
    /// (draining a non-empty queue), so every delivery is a sync edge.
    clocks: VecDeque<Option<VClock>>,
    capacity: Option<usize>,
    recv_waiters: VecDeque<Pid>,
    send_waiters: VecDeque<Pid>,
    closed: bool,
    /// Diagnostic label naming this channel in deadlock wait causes
    /// (message queues set it to their queue name).
    label: String,
    /// Every process that has ever sent on this channel — the plausible
    /// unblockers of a stuck receiver. Deadlock wait-for edges follow them.
    senders: Vec<Pid>,
    /// Every process that has ever received — the plausible unblockers of a
    /// sender stuck on a full channel.
    receivers: Vec<Pid>,
}

impl<T> ChanState<T> {
    fn push(&mut self, pid: Pid, value: T, clock: Option<VClock>) {
        self.queue.push_back(value);
        self.clocks.push_back(clock);
        if !self.senders.contains(&pid) {
            self.senders.push(pid);
        }
    }

    fn pop(&mut self, pid: Pid) -> Option<(T, Option<VClock>)> {
        let v = self.queue.pop_front()?;
        let c = self.clocks.pop_front().flatten();
        if !self.receivers.contains(&pid) {
            self.receivers.push(pid);
        }
        Some((v, c))
    }

    /// Peers that could plausibly unblock a stuck sender: historical
    /// receivers plus anyone currently parked in `recv`.
    fn send_holders(&self) -> Vec<Pid> {
        let mut h = self.receivers.clone();
        for &p in &self.recv_waiters {
            if !h.contains(&p) {
                h.push(p);
            }
        }
        h
    }
}

/// A simulated-blocking MPMC channel. Clone freely; all clones share state.
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChanState<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SimChannel<T> {
    /// An unbounded channel.
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// A bounded channel holding at most `cap` queued messages.
    pub fn bounded(cap: usize) -> Self {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        Self::with_capacity(Some(cap))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(ChanState {
                queue: VecDeque::new(),
                clocks: VecDeque::new(),
                capacity,
                recv_waiters: VecDeque::new(),
                send_waiters: VecDeque::new(),
                closed: false,
                label: "chan".to_string(),
                senders: Vec::new(),
                receivers: Vec::new(),
            })),
        }
    }

    /// Rename the channel's diagnostic label (shared by all clones). Used
    /// in deadlock wait causes, e.g. `recv on '/gvm-req-0'`.
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = label.into();
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Send, blocking while a bounded channel is full.
    /// Returns the value if the channel is closed.
    pub fn send(&self, ctx: &mut Ctx, value: T) -> Result<(), SendError<T>> {
        let me = ctx.pid();
        let mut value = Some(value);
        loop {
            // `Ok(Some(pid))`: sent, wake that receiver. `Ok(None)`: sent,
            // nobody waiting. `Err(())`: full, we registered as a waiter.
            let outcome: Result<Option<Pid>, ()> = {
                let mut st = self.inner.lock();
                if st.closed {
                    return Err(SendError(value.take().expect("value consumed twice")));
                }
                let has_room = st.capacity.map(|c| st.queue.len() < c).unwrap_or(true);
                if has_room {
                    let v = value.take().expect("value consumed twice");
                    st.push(me, v, ctx.clock_stamp());
                    Ok(st.recv_waiters.pop_front())
                } else {
                    st.send_waiters.retain(|&p| p != me);
                    st.send_waiters.push_back(me);
                    Err(())
                }
            };
            match outcome {
                Ok(wake) => {
                    if let Some(p) = wake {
                        ctx.unpark(p);
                    }
                    return Ok(());
                }
                Err(()) => {
                    // Full: nothing can run between registration and this
                    // park, so the queue is still full here.
                    let (label, holders) = {
                        let st = self.inner.lock();
                        (st.label.clone(), st.send_holders())
                    };
                    ctx.set_wait_cause(WaitKind::Send, label, holders);
                    ctx.park();
                }
            }
        }
    }

    /// Send without blocking; `None` means sent, `Some(v)` means no room
    /// (or closed) and the value is handed back.
    pub fn try_send(&self, ctx: &Ctx, value: T) -> Option<T> {
        let wake = {
            let mut st = self.inner.lock();
            if st.closed {
                return Some(value);
            }
            let has_room = st.capacity.map(|c| st.queue.len() < c).unwrap_or(true);
            if !has_room {
                return Some(value);
            }
            st.push(ctx.pid(), value, ctx.clock_stamp());
            st.recv_waiters.pop_front()
        };
        if let Some(p) = wake {
            ctx.unpark(p);
        }
        None
    }

    /// Receive, blocking while empty. `None` once the channel is closed
    /// *and* drained.
    pub fn recv(&self, ctx: &mut Ctx) -> Option<T> {
        let me = ctx.pid();
        loop {
            let (item, wake) = {
                let mut st = self.inner.lock();
                match st.pop(me) {
                    Some((v, c)) => (Some(Some((v, c))), st.send_waiters.pop_front()),
                    None if st.closed => (Some(None), None),
                    None => {
                        st.recv_waiters.retain(|&p| p != me);
                        st.recv_waiters.push_back(me);
                        (None, None)
                    }
                }
            };
            if let Some(p) = wake {
                ctx.unpark(p);
            }
            match item {
                Some(Some((v, c))) => {
                    if let Some(c) = c {
                        ctx.clock_join(&c);
                    }
                    return Some(v);
                }
                Some(None) => return None,
                None => {
                    let (label, holders) = {
                        let st = self.inner.lock();
                        (st.label.clone(), st.senders.clone())
                    };
                    ctx.set_wait_cause(WaitKind::Recv, label, holders);
                    ctx.park();
                }
            }
        }
    }

    /// Receive, blocking for at most `timeout` of simulated time.
    ///
    /// The timeout bounds the *wait*, not the whole call: a message already
    /// queued is returned immediately even with a zero timeout.
    pub fn recv_timeout(&self, ctx: &mut Ctx, timeout: SimDuration) -> RecvTimeout<T> {
        let me = ctx.pid();
        let deadline = ctx.now() + timeout;
        loop {
            let (item, wake) = {
                let mut st = self.inner.lock();
                match st.pop(me) {
                    Some((v, c)) => (Some(Some((v, c))), st.send_waiters.pop_front()),
                    None if st.closed => (Some(None), None),
                    None => {
                        st.recv_waiters.retain(|&p| p != me);
                        st.recv_waiters.push_back(me);
                        (None, None)
                    }
                }
            };
            if let Some(p) = wake {
                ctx.unpark(p);
            }
            match item {
                Some(Some((v, c))) => {
                    if let Some(c) = c {
                        ctx.clock_join(&c);
                    }
                    return RecvTimeout::Msg(v);
                }
                Some(None) => return RecvTimeout::Closed,
                None => {
                    let now = ctx.now();
                    if now >= deadline {
                        self.inner.lock().recv_waiters.retain(|&p| p != me);
                        return RecvTimeout::TimedOut;
                    }
                    if ctx.park_timeout(deadline.duration_since(now)) == WakeReason::Timer {
                        // Timed out. Deregister so a later send does not
                        // waste its wake-up on us, but drain a message that
                        // raced in at this exact instant.
                        let (item, wake) = {
                            let mut st = self.inner.lock();
                            st.recv_waiters.retain(|&p| p != me);
                            match st.pop(me) {
                                Some(vc) => (Some(vc), st.send_waiters.pop_front()),
                                None => (None, None),
                            }
                        };
                        if let Some(p) = wake {
                            ctx.unpark(p);
                        }
                        return match item {
                            Some((v, c)) => {
                                if let Some(c) = c {
                                    ctx.clock_join(&c);
                                }
                                RecvTimeout::Msg(v)
                            }
                            None if self.is_closed() => RecvTimeout::Closed,
                            None => RecvTimeout::TimedOut,
                        };
                    }
                    // Unparked: re-check the queue.
                }
            }
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self, ctx: &Ctx) -> Option<T> {
        let (item, wake) = {
            let mut st = self.inner.lock();
            match st.pop(ctx.pid()) {
                Some(vc) => (Some(vc), st.send_waiters.pop_front()),
                None => (None, None),
            }
        };
        if let Some(p) = wake {
            ctx.unpark(p);
        }
        item.map(|(v, c)| {
            if let Some(c) = c {
                ctx.clock_join(&c);
            }
            v
        })
    }

    /// Close the channel: future sends fail, pending receivers drain the
    /// queue then observe `None`.
    pub fn close(&self, ctx: &Ctx) {
        let wake: Vec<Pid> = {
            let mut st = self.inner.lock();
            st.closed = true;
            let mut wake: Vec<Pid> = st.recv_waiters.drain(..).collect();
            wake.extend(st.send_waiters.drain(..));
            wake
        };
        for p in wake {
            ctx.unpark(p);
        }
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use crate::time::SimDuration;

    #[test]
    fn unbounded_send_recv_in_order() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..5 {
                tx.send(ctx, i).unwrap();
                ctx.hold(SimDuration::from_millis(1));
            }
        });
        sim.spawn("consumer", move |ctx| {
            for i in 0..5 {
                assert_eq!(ch.recv(ctx), Some(i));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let tx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            assert_eq!(ch.recv(ctx), Some(42));
            assert_eq!(ctx.now().as_millis_f64(), 9.0);
        });
        sim.spawn("producer", move |ctx| {
            ctx.hold(SimDuration::from_millis(9));
            tx.send(ctx, 42).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        let mut sim = Simulation::new();
        let ch = SimChannel::bounded(1);
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            tx.send(ctx, 1).unwrap();
            tx.send(ctx, 2).unwrap(); // blocks until consumer drains
            assert_eq!(ctx.now().as_millis_f64(), 5.0);
        });
        sim.spawn("consumer", move |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            assert_eq!(ch.recv(ctx), Some(1));
            assert_eq!(ch.recv(ctx), Some(2));
        });
        sim.run().unwrap();
    }

    #[test]
    fn close_drains_then_yields_none() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            tx.send(ctx, 7).unwrap();
            tx.close(ctx);
            assert!(tx.send(ctx, 8).is_err());
        });
        sim.spawn("consumer", move |ctx| {
            assert_eq!(ch.recv(ctx), Some(7));
            assert_eq!(ch.recv(ctx), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u32> = SimChannel::unbounded();
        let rx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            assert_eq!(rx.recv(ctx), None);
            assert_eq!(ctx.now().as_millis_f64(), 3.0);
        });
        sim.spawn("closer", move |ctx| {
            ctx.hold(SimDuration::from_millis(3));
            ch.close(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_operations_never_block() {
        let mut sim = Simulation::new();
        let ch = SimChannel::bounded(1);
        sim.spawn("p", move |ctx| {
            assert!(ch.try_recv(ctx).is_none());
            assert!(ch.try_send(ctx, 1).is_none());
            assert_eq!(ch.try_send(ctx, 2), Some(2)); // full
            assert_eq!(ch.try_recv(ctx), Some(1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_timeout_returns_message_in_window() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let tx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            assert_eq!(
                ch.recv_timeout(ctx, SimDuration::from_millis(10)),
                RecvTimeout::Msg(5)
            );
            assert_eq!(ctx.now().as_millis_f64(), 3.0);
        });
        sim.spawn("producer", move |ctx| {
            ctx.hold(SimDuration::from_millis(3));
            tx.send(ctx, 5).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_timeout_expires_at_deadline() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u32> = SimChannel::unbounded();
        let tx = ch.clone();
        sim.spawn("consumer", move |ctx| {
            assert_eq!(
                ch.recv_timeout(ctx, SimDuration::from_millis(2)),
                RecvTimeout::TimedOut
            );
            assert_eq!(ctx.now().as_millis_f64(), 2.0);
            // A message sent after the timeout is still receivable later.
            assert_eq!(ch.recv(ctx), Some(9));
        });
        sim.spawn("late-producer", move |ctx| {
            ctx.hold(SimDuration::from_millis(7));
            tx.send(ctx, 9).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_timeout_sees_close() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u32> = SimChannel::unbounded();
        let closer = ch.clone();
        sim.spawn("consumer", move |ctx| {
            assert_eq!(
                ch.recv_timeout(ctx, SimDuration::from_millis(50)),
                RecvTimeout::Closed
            );
            assert_eq!(ctx.now().as_millis_f64(), 1.0);
        });
        sim.spawn("closer", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            closer.close(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_timeout_zero_acts_like_try_recv() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        sim.spawn("p", move |ctx| {
            assert_eq!(
                ch.recv_timeout(ctx, SimDuration::ZERO),
                RecvTimeout::TimedOut
            );
            ch.send(ctx, 1).unwrap();
            assert_eq!(ch.recv_timeout(ctx, SimDuration::ZERO), RecvTimeout::Msg(1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn timed_out_receiver_does_not_steal_wakeups() {
        // A receiver that timed out must deregister itself: a later send
        // must wake the *other* (still-parked) receiver, not be wasted.
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let r1 = ch.clone();
        let r2 = ch.clone();
        let tx = ch.clone();
        sim.spawn("quitter", move |ctx| {
            assert_eq!(
                r1.recv_timeout(ctx, SimDuration::from_millis(1)),
                RecvTimeout::TimedOut
            );
            // Stays alive but never receives again.
            ctx.hold(SimDuration::from_millis(100));
        });
        sim.spawn("patient", move |ctx| {
            assert_eq!(r2.recv(ctx), Some(77));
            assert_eq!(ctx.now().as_millis_f64(), 5.0);
        });
        sim.spawn("producer", move |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            tx.send(ctx, 77).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn multiple_consumers_each_get_one() {
        let mut sim = Simulation::new();
        let ch = SimChannel::unbounded();
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let rx = ch.clone();
            let got = got.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                let v = rx.recv(ctx).unwrap();
                got.lock().push(v);
            });
        }
        sim.spawn("producer", move |ctx| {
            for v in [10, 20, 30] {
                ctx.hold(SimDuration::from_millis(1));
                ch.send(ctx, v).unwrap();
            }
        });
        sim.run().unwrap();
        let mut v = got.lock().clone();
        v.sort();
        assert_eq!(v, vec![10, 20, 30]);
    }
}

//! Pluggable scheduling oracles.
//!
//! The engine makes exactly two kinds of nondeterministic-looking choices:
//! which ready process to resume next ([`DecisionKind::Run`]) and which of
//! several same-instant timers to fire first ([`DecisionKind::Timer`]). Both
//! default to FIFO/arm order, which keeps plain runs deterministic. A
//! [`SchedOracle`] installed via `Simulation::set_oracle` takes over those
//! choices whenever more than one candidate exists, which is what schedule
//! exploration (`gv-analyze::explore`) builds on:
//!
//! * **record** — [`ScriptOracle::recording`] plays the FIFO default and
//!   logs every [`Decision`] it was consulted on;
//! * **replay** — [`ScriptOracle::replay`] re-applies a recorded choice
//!   vector bit-for-bit (positions past the script fall back to FIFO);
//! * **enumerate** — an explorer replays a prefix, deviates at one
//!   decision, and lets the FIFO tail run, turning the engine into a
//!   stateless model checker.
//!
//! Oracles are consulted only when `candidates.len() >= 2`; with no oracle
//! installed the engine takes index 0 without constructing candidates, so
//! ordinary simulations pay nothing for this hook.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::kernel::{Pid, WakeReason};
use crate::time::SimTime;

/// Which scheduling choice the engine is asking about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Pick the next process to resume from the ready queue.
    Run,
    /// Pick which of several timers expiring at the same instant fires
    /// first.
    Timer,
}

impl DecisionKind {
    /// Stable one-letter label used by the `.gvsched` format.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Run => "run",
            DecisionKind::Timer => "timer",
        }
    }
}

/// One schedulable alternative presented to the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The process that would run (or whose timer would fire).
    pub pid: Pid,
    /// Why it would wake.
    pub reason: WakeReason,
    /// The process's name at decision time (diagnostic only).
    pub name: String,
    /// The process's vector clock at decision time. Empty while analysis
    /// recording is off; the explorer's partial-order pruning keys on it.
    pub clock: VClock,
}

/// One consulted choice: the candidates offered and the index taken.
///
/// Index 0 is always the FIFO/arm-order default, so a decision trace of all
/// zeros reproduces the unexplored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Run-queue pick or timer tie-break.
    pub kind: DecisionKind,
    /// Simulated time when the choice was made.
    pub time: SimTime,
    /// Index into `candidates` that was chosen.
    pub chosen: usize,
    /// The alternatives that were available.
    pub candidates: Vec<Candidate>,
}

/// A scheduling policy consulted by the engine.
///
/// `choose` must return an index into `candidates`; out-of-range returns
/// are clamped to the last candidate. Implementations that want a record of
/// what happened log their own [`Decision`]s (see [`DecisionLog`]).
pub trait SchedOracle: Send {
    /// Pick one of `candidates` (never empty, always `len() >= 2`).
    fn choose(&mut self, kind: DecisionKind, now: SimTime, candidates: &[Candidate]) -> usize;

    /// Box this oracle into the handle `Simulation::set_oracle` accepts.
    fn into_handle(self) -> OracleHandle
    where
        Self: Sized + 'static,
    {
        Arc::new(Mutex::new(Box::new(self)))
    }
}

/// Shared, type-erased oracle handle installed on a simulation.
pub type OracleHandle = Arc<Mutex<Box<dyn SchedOracle>>>;

/// Shared log of every decision an oracle was consulted on. Clone it before
/// boxing the oracle into a handle; the clone stays readable after the run.
#[derive(Clone, Default)]
pub struct DecisionLog {
    inner: Arc<Mutex<Vec<Decision>>>,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&self, d: Decision) {
        self.inner.lock().push(d);
    }

    /// All decisions recorded so far, in consultation order.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.inner.lock().clone()
    }

    /// Just the chosen indices — the choice vector a
    /// [`ScriptOracle::replay`] of this run would take.
    pub fn choices(&self) -> Vec<u32> {
        self.inner.lock().iter().map(|d| d.chosen as u32).collect()
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plays back a fixed choice vector, then falls through to the FIFO
/// default (index 0). Records every decision, so the same type serves as
/// the pure recorder (empty script), the replayer (full script), and the
/// explorer's prefix-deviation driver (partial script).
pub struct ScriptOracle {
    script: Vec<u32>,
    pos: usize,
    log: DecisionLog,
}

impl ScriptOracle {
    /// An oracle that always takes the FIFO default and records.
    pub fn recording() -> Self {
        Self::replay(Vec::new())
    }

    /// An oracle that applies `script[i]` at decision `i` (clamped to the
    /// candidate count) and the FIFO default past the end.
    pub fn replay(script: Vec<u32>) -> Self {
        ScriptOracle {
            script,
            pos: 0,
            log: DecisionLog::new(),
        }
    }

    /// Handle to this oracle's decision log (clone survives the run).
    pub fn log(&self) -> DecisionLog {
        self.log.clone()
    }
}

impl SchedOracle for ScriptOracle {
    fn choose(&mut self, kind: DecisionKind, now: SimTime, candidates: &[Candidate]) -> usize {
        let want = self.script.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        let chosen = want.min(candidates.len() - 1);
        self.log.push(Decision {
            kind,
            time: now,
            chosen,
            candidates: candidates.to_vec(),
        });
        chosen
    }
}

/// A seeded pseudo-random oracle (xorshift64*): the cheap fallback when
/// exhaustive exploration is out of budget. Deterministic for a fixed seed.
pub struct RandomOracle {
    state: u64,
    log: DecisionLog,
}

impl RandomOracle {
    /// A random oracle with the given seed (0 is remapped; the generator
    /// cannot run on a zero state).
    pub fn seeded(seed: u64) -> Self {
        RandomOracle {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            log: DecisionLog::new(),
        }
    }

    /// Handle to this oracle's decision log (clone survives the run).
    pub fn log(&self) -> DecisionLog {
        self.log.clone()
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl SchedOracle for RandomOracle {
    fn choose(&mut self, kind: DecisionKind, now: SimTime, candidates: &[Candidate]) -> usize {
        let chosen = (self.next() % candidates.len() as u64) as usize;
        self.log.push(Decision {
            kind,
            time: now,
            chosen,
            candidates: candidates.to_vec(),
        });
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate {
                pid: Pid::from_index(i),
                reason: WakeReason::Unpark,
                name: format!("p{i}"),
                clock: VClock::new(),
            })
            .collect()
    }

    #[test]
    fn script_oracle_replays_then_defaults_to_fifo() {
        let mut o = ScriptOracle::replay(vec![1, 9]);
        let log = o.log();
        assert_eq!(o.choose(DecisionKind::Run, SimTime::ZERO, &cands(3)), 1);
        // 9 is clamped into range.
        assert_eq!(o.choose(DecisionKind::Run, SimTime::ZERO, &cands(3)), 2);
        // Past the script: FIFO default.
        assert_eq!(o.choose(DecisionKind::Timer, SimTime::ZERO, &cands(2)), 0);
        assert_eq!(log.choices(), vec![1, 2, 0]);
        assert_eq!(log.snapshot()[2].kind, DecisionKind::Timer);
    }

    #[test]
    fn random_oracle_is_deterministic_per_seed() {
        let mut a = RandomOracle::seeded(42);
        let mut b = RandomOracle::seeded(42);
        for _ in 0..32 {
            assert_eq!(
                a.choose(DecisionKind::Run, SimTime::ZERO, &cands(4)),
                b.choose(DecisionKind::Run, SimTime::ZERO, &cands(4))
            );
        }
    }
}

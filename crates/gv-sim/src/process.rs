//! The process-side handle, [`Ctx`].
//!
//! A `Ctx` is handed to every process closure. All blocking operations
//! (`hold`, `park`, `park_timeout`) yield control back to the engine; all
//! other operations mutate shared kernel state directly and return without
//! yielding, so a process observes no interleaving between two consecutive
//! non-yielding calls.

use std::sync::Arc;

use crossbeam::channel::Receiver;

use crate::clock::VClock;
use crate::kernel::{
    KernelShared, Pid, Terminated, WaitCause, WaitKind, WakeReason, YieldMsg, YieldOp,
};
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Per-process simulation context: the handle through which a process
/// observes and advances simulated time.
pub struct Ctx {
    shared: Arc<KernelShared>,
    pid: Pid,
    resume_rx: Receiver<WakeReason>,
}

impl Ctx {
    pub(crate) fn new(
        shared: Arc<KernelShared>,
        pid: Pid,
        resume_rx: Receiver<WakeReason>,
    ) -> Self {
        Ctx {
            shared,
            pid,
            resume_rx,
        }
    }

    pub(crate) fn shared(&self) -> &Arc<KernelShared> {
        &self.shared
    }

    /// Block on the resume channel. `Err` means the simulation was torn
    /// down before this process ever ran.
    pub(crate) fn wait_resume(&self) -> Result<WakeReason, ()> {
        self.resume_rx.recv().map_err(|_| ())
    }

    /// Block on the resume channel mid-run; unwinds with the teardown
    /// sentinel if the engine has abandoned us (horizon stop / deadlock).
    fn wait_resume_or_unwind(&self) -> WakeReason {
        match self.resume_rx.recv() {
            Ok(reason) => reason,
            Err(_) => std::panic::panic_any(Terminated),
        }
    }

    fn do_yield(&mut self, op: YieldOp) -> WakeReason {
        self.shared
            .yield_tx
            .send(YieldMsg { pid: self.pid, op })
            .expect("engine disappeared");
        self.wait_resume_or_unwind()
    }

    /// This process's identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's name.
    pub fn name(&self) -> String {
        self.shared.state.lock().slots[self.pid.index()]
            .name
            .clone()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// The trace recorder shared by the whole simulation.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Advance simulated time by `d`. Unparks received while holding are
    /// remembered as a token for the next `park`.
    pub fn hold(&mut self, d: SimDuration) {
        let reason = self.do_yield(YieldOp::Hold(d));
        debug_assert_eq!(reason, WakeReason::Timer);
    }

    /// Advance simulated time to `at` (no-op if `at` is in the past).
    pub fn hold_until(&mut self, at: SimTime) {
        let now = self.now();
        if at > now {
            self.hold(at.duration_since(now));
        }
    }

    /// Yield to any other process runnable at the current instant.
    pub fn yield_now(&mut self) {
        self.hold(SimDuration::ZERO);
    }

    /// Block until another process unparks us (or immediately, consuming
    /// the token, if an unpark is already pending).
    pub fn park(&mut self) -> WakeReason {
        self.do_yield(YieldOp::Park)
    }

    /// Like [`park`](Self::park) but also wakes after `d`; the return value
    /// distinguishes the two causes.
    pub fn park_timeout(&mut self, d: SimDuration) -> WakeReason {
        self.do_yield(YieldOp::ParkTimeout(d))
    }

    /// Record why this process is about to block. Sync primitives call this
    /// right before parking so a deadlock report can explain each stuck
    /// process (wait kind, resource, and the peers that could unblock it).
    /// The cause is cleared automatically on the next wake.
    pub fn set_wait_cause(&self, kind: WaitKind, resource: impl Into<String>, holders: Vec<Pid>) {
        let mut st = self.shared.state.lock();
        st.set_wait_cause(
            self.pid,
            WaitCause {
                kind,
                resource: resource.into(),
                holders,
            },
        );
    }

    /// Wake `pid` if parked; otherwise leave it a wake token.
    ///
    /// While analysis recording is on, an unpark is also a happens-before
    /// edge from this process to `pid` (clock propagation).
    pub fn unpark(&self, pid: Pid) {
        let mut st = self.shared.state.lock();
        if self.shared.tracer.analysis_enabled() {
            st.propagate_clock(self.pid, pid);
        }
        st.unpark(pid);
    }

    /// Tick this process's vector clock and return a snapshot, or `None`
    /// while analysis recording is off. Used by channels to stamp messages.
    pub fn clock_stamp(&self) -> Option<VClock> {
        if !self.shared.tracer.analysis_enabled() {
            return None;
        }
        let mut st = self.shared.state.lock();
        let slot = &mut st.slots[self.pid.index()];
        slot.clock.tick(self.pid.index());
        Some(slot.clock.clone())
    }

    /// Join `clock` into this process's vector clock (receive-side half of
    /// a synchronization edge). No-op while analysis recording is off.
    pub fn clock_join(&self, clock: &VClock) {
        if !self.shared.tracer.analysis_enabled() {
            return;
        }
        let mut st = self.shared.state.lock();
        st.slots[self.pid.index()].clock.join(clock);
    }

    /// Spawn a child process, runnable at the current instant (it runs only
    /// once this process yields). The child inherits this process's clock
    /// (spawn is a happens-before edge).
    pub fn spawn<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, None, Some(self.pid), f)
    }

    /// Spawn a child process that first runs at simulated time `at`.
    pub fn spawn_at<F>(&self, at: SimTime, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, Some(at), Some(self.pid), f)
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("now", &self.now())
            .finish()
    }
}

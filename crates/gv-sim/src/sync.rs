//! Blocking synchronization primitives for simulation processes.
//!
//! All primitives here block in *simulated* time via [`Ctx::park`] and are
//! safe to share between processes (they are internally locked, and the
//! engine guarantees only one process runs at a time).
//!
//! Every blocking method takes `&mut Ctx` because parking yields to the
//! engine. Wake-ups may be spurious from the primitive's point of view
//! (a process can hold at most one pending unpark token), so all wait loops
//! re-check their condition.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::kernel::{Pid, WaitKind};
use crate::process::Ctx;
use crate::trace::AnalysisRecord;

/// A counting semaphore with FIFO hand-off fairness: a released permit is
/// granted directly to the longest-waiting process, so late arrivals cannot
/// barge past waiters.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<SemState>>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Pid>,
    grants: Vec<Pid>,
    /// Processes currently holding a permit (acquired, not yet released).
    /// Deadlock reports name them as the peers a blocked acquirer waits on.
    holders: Vec<Pid>,
    /// Diagnostic label naming this semaphore in wait causes.
    label: String,
    /// Joined clock of every `release` so far; acquirers join it, modeling
    /// the internal lock of a real semaphore as a sync edge.
    release_clock: VClock,
}

impl Semaphore {
    /// Create a semaphore holding `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Self::labeled(permits, "sem")
    }

    /// Create a semaphore with a diagnostic label (used in deadlock
    /// reports, e.g. `"cuda-driver-lock"`).
    pub fn labeled(permits: usize, label: impl Into<String>) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
                grants: Vec::new(),
                holders: Vec::new(),
                label: label.into(),
                release_clock: VClock::new(),
            })),
        }
    }

    /// Rename the semaphore's diagnostic label (shared by all clones).
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = label.into();
    }

    /// Acquire one permit, blocking in simulated time.
    pub fn acquire(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        loop {
            let (label, holders) = {
                let mut st = self.inner.lock();
                if let Some(pos) = st.grants.iter().position(|&p| p == me) {
                    st.grants.swap_remove(pos);
                    st.holders.push(me);
                    ctx.clock_join(&st.release_clock);
                    return;
                }
                if st.permits > 0 && st.waiters.is_empty() {
                    st.permits -= 1;
                    st.holders.push(me);
                    ctx.clock_join(&st.release_clock);
                    return;
                }
                st.waiters.retain(|&p| p != me);
                st.waiters.push_back(me);
                (st.label.clone(), st.holders.clone())
            };
            ctx.set_wait_cause(WaitKind::SemAcquire, label, holders);
            ctx.park();
        }
    }

    /// Try to acquire without blocking; true on success.
    pub fn try_acquire(&self, ctx: &Ctx) -> bool {
        let me = ctx.pid();
        let mut st = self.inner.lock();
        if let Some(pos) = st.grants.iter().position(|&p| p == me) {
            st.grants.swap_remove(pos);
            st.holders.push(me);
            ctx.clock_join(&st.release_clock);
            return true;
        }
        if st.permits > 0 && st.waiters.is_empty() {
            st.permits -= 1;
            st.holders.push(me);
            ctx.clock_join(&st.release_clock);
            true
        } else {
            false
        }
    }

    /// Release one permit; hands it to the oldest waiter if any.
    pub fn release(&self, ctx: &Ctx) {
        let mut st = self.inner.lock();
        if let Some(c) = ctx.clock_stamp() {
            st.release_clock.join(&c);
        }
        let me = ctx.pid();
        if let Some(pos) = st.holders.iter().position(|&p| p == me) {
            st.holders.swap_remove(pos);
        }
        if let Some(p) = st.waiters.pop_front() {
            st.grants.push(p);
            drop(st);
            ctx.unpark(p);
        } else {
            st.permits += 1;
        }
    }

    /// Permits currently available (excluding in-flight grants).
    pub fn available(&self) -> usize {
        self.inner.lock().permits
    }
}

/// A condition queue (condition-variable analogue). Processes `wait` until
/// another process `notify`s; because wake-ups can be spurious, callers must
/// re-check their predicate in a loop.
#[derive(Clone)]
pub struct CondQueue {
    inner: Arc<Mutex<CondState>>,
}

struct CondState {
    waiters: VecDeque<Pid>,
    label: String,
}

impl Default for CondQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CondQueue {
    /// Create an empty condition queue.
    pub fn new() -> Self {
        Self::labeled("cond")
    }

    /// Create a condition queue with a diagnostic label. The label names
    /// the queue in deadlock wait causes and in the `NotifyLost` records
    /// the lost-wakeup checker correlates.
    pub fn labeled(label: impl Into<String>) -> Self {
        CondQueue {
            inner: Arc::new(Mutex::new(CondState {
                waiters: VecDeque::new(),
                label: label.into(),
            })),
        }
    }

    /// Rename the queue's diagnostic label (shared by all clones).
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = label.into();
    }

    /// Park until notified (or spuriously woken — re-check predicates!).
    pub fn wait(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let label = {
            let mut st = self.inner.lock();
            st.waiters.retain(|&p| p != me);
            st.waiters.push_back(me);
            st.label.clone()
        };
        ctx.set_wait_cause(WaitKind::CondWait, label, Vec::new());
        ctx.park();
    }

    /// Wake the oldest waiter, if any. A notify that finds no waiter is
    /// recorded (while analysis is on) as a potential lost wakeup — benign
    /// unless someone later blocks forever waiting on this queue.
    pub fn notify_one(&self, ctx: &Ctx) {
        let (target, label) = {
            let mut st = self.inner.lock();
            let t = st.waiters.pop_front();
            (t, st.label.clone())
        };
        match target {
            Some(p) => ctx.unpark(p),
            None => {
                ctx.tracer().record_analysis(AnalysisRecord::NotifyLost {
                    time: ctx.now(),
                    resource: label,
                });
            }
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self, ctx: &Ctx) {
        let targets: Vec<Pid> = {
            let mut st = self.inner.lock();
            st.waiters.drain(..).collect()
        };
        for p in targets {
            ctx.unpark(p);
        }
    }

    /// Number of processes currently registered as waiting.
    pub fn waiter_count(&self) -> usize {
        self.inner.lock().waiters.len()
    }
}

/// A cyclic, sense-reversing barrier for a fixed party count — the paper's
/// GVM uses exactly this to synchronize `STR` requests from all SPMD
/// processes before flushing the CUDA streams together.
#[derive(Clone)]
pub struct SimBarrier {
    inner: Arc<Mutex<BarrierState>>,
    parties: usize,
}

struct BarrierState {
    count: usize,
    sense: bool,
    waiters: Vec<Pid>,
    label: String,
    /// Joined clocks of the current generation's arrivals. Unpark edges
    /// alone would miss the earlier-arrival → leader direction; the barrier
    /// is all-to-all, so every releasee joins the whole generation's clock.
    arrival_clock: VClock,
    /// The previous generation's merged clock, joined by released waiters.
    release_clock: VClock,
}

impl SimBarrier {
    /// A barrier for `parties` processes (`parties >= 1`).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        SimBarrier {
            inner: Arc::new(Mutex::new(BarrierState {
                count: 0,
                sense: false,
                waiters: Vec::new(),
                label: "barrier".to_string(),
                arrival_clock: VClock::new(),
                release_clock: VClock::new(),
            })),
            parties,
        }
    }

    /// Rename the barrier's diagnostic label (shared by all clones).
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = label.into();
    }

    /// Number of parties the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties arrive. Returns `true` for exactly one
    /// process per generation (the "leader": the last to arrive).
    pub fn wait(&self, ctx: &mut Ctx) -> bool {
        let my_sense;
        let label;
        {
            let mut st = self.inner.lock();
            st.count += 1;
            if let Some(c) = ctx.clock_stamp() {
                st.arrival_clock.join(&c);
            }
            if st.count == self.parties {
                st.count = 0;
                st.sense = !st.sense;
                // All-to-all release: everyone (leader included) observes
                // the merged clock of every arrival in this generation.
                st.release_clock = std::mem::take(&mut st.arrival_clock);
                let release = st.release_clock.clone();
                let wake: Vec<Pid> = st.waiters.drain(..).collect();
                drop(st);
                ctx.clock_join(&release);
                for p in wake {
                    ctx.unpark(p);
                }
                return true;
            }
            my_sense = st.sense;
            label = st.label.clone();
            st.waiters.push(ctx.pid());
        }
        loop {
            ctx.set_wait_cause(WaitKind::BarrierWait, label.clone(), Vec::new());
            ctx.park();
            let st = self.inner.lock();
            if st.sense != my_sense {
                ctx.clock_join(&st.release_clock);
                return false;
            }
        }
    }

    /// How many parties have arrived in the current generation.
    pub fn arrived(&self) -> usize {
        self.inner.lock().count
    }
}

/// A one-shot gate (latch): starts closed, opens once, stays open.
#[derive(Clone)]
pub struct Gate {
    inner: Arc<Mutex<GateState>>,
}

struct GateState {
    open: bool,
    waiters: Vec<Pid>,
    label: String,
    /// The opener's clock; joined by waiters (including ones that arrive
    /// after the gate already opened, where no unpark edge exists).
    open_clock: VClock,
}

impl Default for Gate {
    fn default() -> Self {
        Self::new()
    }
}

impl Gate {
    /// A closed gate.
    pub fn new() -> Self {
        Gate {
            inner: Arc::new(Mutex::new(GateState {
                open: false,
                waiters: Vec::new(),
                label: "gate".to_string(),
                open_clock: VClock::new(),
            })),
        }
    }

    /// Rename the gate's diagnostic label (shared by all clones).
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = label.into();
    }

    /// Is the gate open?
    pub fn is_open(&self) -> bool {
        self.inner.lock().open
    }

    /// Open the gate, waking all waiters. Idempotent.
    pub fn open(&self, ctx: &Ctx) {
        let wake: Vec<Pid> = {
            let mut st = self.inner.lock();
            if st.open {
                return;
            }
            st.open = true;
            if let Some(c) = ctx.clock_stamp() {
                st.open_clock.join(&c);
            }
            st.waiters.drain(..).collect()
        };
        for p in wake {
            ctx.unpark(p);
        }
    }

    /// Block until the gate opens (returns immediately if already open).
    pub fn wait(&self, ctx: &mut Ctx) {
        loop {
            let label = {
                let mut st = self.inner.lock();
                if st.open {
                    ctx.clock_join(&st.open_clock);
                    return;
                }
                let me = ctx.pid();
                st.waiters.retain(|&p| p != me);
                st.waiters.push(me);
                st.label.clone()
            };
            ctx.set_wait_cause(WaitKind::GateWait, label, Vec::new());
            ctx.park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn semaphore_serializes_critical_section() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(1);
        let in_cs = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let sem = sem.clone();
            let in_cs = in_cs.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                sem.acquire(ctx);
                assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                ctx.hold(SimDuration::from_millis(10));
                in_cs.fetch_sub(1, Ordering::SeqCst);
                sem.release(ctx);
            });
        }
        let s = sim.run().unwrap();
        // Four 10ms critical sections fully serialized.
        assert_eq!(s.end_time.as_millis_f64(), 40.0);
    }

    #[test]
    fn semaphore_capacity_two_halves_makespan() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(2);
        for i in 0..4 {
            let sem = sem.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                sem.acquire(ctx);
                ctx.hold(SimDuration::from_millis(10));
                sem.release(ctx);
            });
        }
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 20.0);
    }

    #[test]
    fn semaphore_is_fifo_fair() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let sem = sem.clone();
            let order = order.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                // Stagger arrivals: p0 at 0, p1 at 1ms, p2 at 2ms.
                ctx.hold(SimDuration::from_millis(i));
                sem.acquire(ctx);
                order.lock().push(i);
                ctx.hold(SimDuration::from_millis(10));
                sem.release(ctx);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(1);
        sim.spawn("p", move |ctx| {
            assert!(sem.try_acquire(ctx));
            assert!(!sem.try_acquire(ctx));
            sem.release(ctx);
            assert!(sem.try_acquire(ctx));
            sem.release(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut sim = Simulation::new();
        let bar = SimBarrier::new(3);
        let leaders = Arc::new(AtomicUsize::new(0));
        for i in 0..3u64 {
            let bar = bar.clone();
            let leaders = leaders.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.hold(SimDuration::from_millis(i * 5));
                if bar.wait(ctx) {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                // Everyone resumes at the last arrival time (t = 10ms).
                assert_eq!(ctx.now().as_millis_f64(), 10.0);
            });
        }
        sim.run().unwrap();
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut sim = Simulation::new();
        let bar = SimBarrier::new(2);
        for i in 0..2u64 {
            let bar = bar.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                for round in 0..3u64 {
                    ctx.hold(SimDuration::from_millis(i + 1));
                    bar.wait(ctx);
                    let _ = round;
                }
            });
        }
        // Each round gated by the slower (2ms) process: 3 rounds → 6ms.
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 6.0);
    }

    #[test]
    fn gate_wakes_all_waiters_and_stays_open() {
        let mut sim = Simulation::new();
        let gate = Gate::new();
        for i in 0..3 {
            let gate = gate.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                gate.wait(ctx);
                assert_eq!(ctx.now().as_millis_f64(), 5.0);
            });
        }
        let g2 = gate.clone();
        sim.spawn("opener", move |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            g2.open(ctx);
        });
        let gate3 = gate.clone();
        sim.spawn("late", move |ctx| {
            ctx.hold(SimDuration::from_millis(20));
            gate3.wait(ctx); // already open: returns immediately
            assert_eq!(ctx.now().as_millis_f64(), 20.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn condqueue_notify_one_wakes_in_fifo_order() {
        let mut sim = Simulation::new();
        let cq = CondQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u64 {
            let cq = cq.clone();
            let order = order.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.hold(SimDuration::from_millis(i));
                cq.wait(ctx);
                order.lock().push(i);
            });
        }
        let cq2 = cq.clone();
        sim.spawn("n", move |ctx| {
            ctx.hold(SimDuration::from_millis(10));
            cq2.notify_one(ctx);
            ctx.hold(SimDuration::from_millis(10));
            cq2.notify_one(ctx);
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1]);
    }
}

//! Simulated time.
//!
//! The simulation clock counts nanoseconds from the start of the run in a
//! `u64`, which gives ~584 years of range — far beyond any experiment here.
//! All of the paper's quantities are reported in milliseconds, so both types
//! provide fallible-free millisecond conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// in the future (callers comparing across engines rely on this).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative and NaN inputs clamp to
    /// zero; values beyond the representable range clamp to `MAX`.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN and negatives clamp to zero (NaN fails the comparison).
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1.0e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Construct from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1.0e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, clamping to the representable range.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a).as_nanos(), 10);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_millis_f64(135.874);
        assert!((d.as_millis_f64() - 135.874).abs() < 1e-6);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_nanos(1_500_000).to_string(), "1.500ms");
    }

    #[test]
    fn mul_div_sum() {
        let d = SimDuration::from_millis(4);
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(12));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }
}

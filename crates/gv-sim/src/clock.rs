//! Vector clocks for happens-before tracking.
//!
//! When analysis recording is enabled (see [`Tracer::set_analysis`]), the
//! kernel maintains one [`VClock`] per process and propagates it along every
//! *explicit* synchronization edge: spawn (parent → child), unpark
//! (waker → wakee), per-message channel delivery (sender → receiver), and
//! the release operations of the `sync` primitives. Simulated time is
//! deliberately **not** an ordering source: two events at the same or
//! different instants are concurrent unless a synchronization chain connects
//! them, exactly as on real hardware where the wall clock orders nothing.
//!
//! [`Tracer::set_analysis`]: crate::trace::Tracer::set_analysis

/// A vector clock indexed by process id ([`Pid::index`]).
///
/// The vector grows on demand; absent entries are zero. Component `i` counts
/// the synchronization-relevant events process `i` had performed when this
/// clock was captured.
///
/// [`Pid::index`]: crate::kernel::Pid::index
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The empty clock (all components zero).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component for process index `i` (zero when never set).
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Increment the component for process index `i`.
    pub fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    /// Pointwise maximum with `other` (the classic clock join).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Pointwise `self <= other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }

    /// Raw components (trailing zeros may be truncated).
    pub fn components(&self) -> &[u64] {
        &self.0
    }

    /// Build from raw components (used when reloading a dumped trace).
    pub fn from_components(c: Vec<u64>) -> Self {
        VClock(c)
    }
}

/// Epoch-style happens-before test between two captured access clocks.
///
/// Each access ticks its own process component immediately before the
/// snapshot, so `a.clock.get(a_pid)` is the access's epoch in process
/// `a_pid`. Access `a` happens-before access `b` iff `b`'s clock has caught
/// up to that epoch.
pub fn happens_before(a_pid: usize, a_clock: &VClock, b_clock: &VClock) -> bool {
    a_clock.get(a_pid) <= b_clock.get(a_pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        c.tick(0);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(7), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::from_components(vec![1, 5, 0]);
        let b = VClock::from_components(vec![2, 3, 0, 4]);
        a.join(&b);
        assert_eq!(a.components(), &[2, 5, 0, 4]);
    }

    #[test]
    fn le_handles_length_mismatch() {
        let a = VClock::from_components(vec![1, 2]);
        let b = VClock::from_components(vec![1, 2, 0]);
        assert!(a.le(&b));
        assert!(b.le(&a));
        let c = VClock::from_components(vec![0, 2]);
        assert!(c.le(&a));
        assert!(!a.le(&c));
    }

    #[test]
    fn epoch_happens_before() {
        // P0 ticks, sends its clock; P1 joins then ticks.
        let mut c0 = VClock::new();
        c0.tick(0); // access a by P0
        let mut c1 = VClock::new();
        c1.join(&c0);
        c1.tick(1); // access b by P1, after sync
        assert!(happens_before(0, &c0, &c1));
        assert!(!happens_before(1, &c1, &c0));

        // Unsynchronized accesses are concurrent both ways.
        let mut d0 = VClock::new();
        d0.tick(0);
        let mut d1 = VClock::new();
        d1.tick(1);
        assert!(!happens_before(0, &d0, &d1));
        assert!(!happens_before(1, &d1, &d0));
    }
}

//! # gv-sim — deterministic discrete-event simulation kernel
//!
//! The execution substrate for the GPU-virtualization reproduction: a
//! SimPy-style process-oriented discrete-event simulator. Simulation
//! *processes* are ordinary Rust closures running on dedicated threads, but
//! the engine resumes exactly one at a time, so execution is deterministic
//! and all shared state is effectively single-threaded.
//!
//! ```
//! use gv_sim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new();
//! sim.spawn("worker", |ctx| {
//!     ctx.hold(SimDuration::from_millis(10));
//!     assert_eq!(ctx.now().as_millis_f64(), 10.0);
//! });
//! let summary = sim.run().unwrap();
//! assert_eq!(summary.end_time.as_millis_f64(), 10.0);
//! ```
//!
//! Modules:
//! * [`time`] — `SimTime` / `SimDuration` (nanosecond clock)
//! * [`kernel`] — the engine ([`Simulation`]) and process lifecycle
//! * [`process`] — the per-process handle ([`Ctx`])
//! * [`sync`] — semaphores, condition queues, barriers, gates
//! * [`channel`] — blocking MPMC channels
//! * [`resource`] — FIFO servers with utilization accounting
//! * [`trace`] — timeline recording for overlap audits
//! * [`clock`] — vector clocks for happens-before analysis
//! * [`oracle`] — pluggable scheduling oracles (record / replay / explore)

#![warn(missing_docs)]

pub mod channel;
pub mod clock;
pub mod kernel;
pub mod oracle;
pub mod process;
pub mod resource;
pub mod sync;
pub mod time;
pub mod trace;

pub use channel::{RecvTimeout, SendError, SimChannel};
pub use clock::{happens_before, VClock};
pub use kernel::{
    BlockedProcess, Pid, SimError, Simulation, Summary, WaitCause, WaitKind, WakeReason,
};
pub use oracle::{
    Candidate, Decision, DecisionKind, DecisionLog, OracleHandle, RandomOracle, SchedOracle,
    ScriptOracle,
};
pub use process::Ctx;
pub use resource::FifoServer;
pub use sync::{CondQueue, Gate, Semaphore, SimBarrier};
pub use time::{SimDuration, SimTime};
pub use trace::{AnalysisRecord, Span, SpanIssue, TraceEvent, TraceKind, Tracer, FAULT_CATEGORY};

//! Timeline recording.
//!
//! A [`Tracer`] collects timestamped events (instants and begin/end spans)
//! from anywhere in the simulation. The harness uses it to reconstruct
//! engine occupancy Gantt charts and to audit overlap (e.g. "did the H2D
//! copy of process 2 overlap kernel execution of process 1?").
//!
//! Recording is disabled by default; enabling costs one mutex acquisition
//! per event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;

/// Category under which injected-fault and recovery events are recorded
/// (see [`Tracer::fault`]).
pub const FAULT_CATEGORY: &str = "fault";

/// What kind of event a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A point event.
    Instant,
    /// Start of an activity span.
    Begin,
    /// End of an activity span.
    End,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulated timestamp.
    pub time: SimTime,
    /// Coarse category, e.g. `"h2d"`, `"kernel"`, `"gvm"`.
    pub category: &'static str,
    /// Free-form label, e.g. a kernel or process name.
    pub label: String,
    /// Point event or span boundary.
    pub kind: TraceKind,
    /// Track identifier grouping related events (engine id, process index).
    pub track: u32,
}

struct Inner {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

/// Cheaply cloneable handle to a shared trace buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer with an empty buffer.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording currently on?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Record one event (no-op while disabled).
    pub fn record(
        &self,
        time: SimTime,
        category: &'static str,
        label: impl Into<String>,
        kind: TraceKind,
        track: u32,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.inner.events.lock().push(TraceEvent {
            time,
            category,
            label: label.into(),
            kind,
            track,
        });
    }

    /// Record a point event.
    pub fn instant(&self, time: SimTime, category: &'static str, label: impl Into<String>) {
        self.record(time, category, label, TraceKind::Instant, 0);
    }

    /// Record an injected-fault or recovery event (a point event under
    /// [`FAULT_CATEGORY`]). Fault-injection layers across the stack all
    /// funnel through here so a run's fault schedule can be replayed and
    /// diffed as part of its timeline.
    pub fn fault(&self, time: SimTime, label: impl Into<String>) {
        self.record(time, FAULT_CATEGORY, label, TraceKind::Instant, 0);
    }

    /// Point events recorded under [`FAULT_CATEGORY`], in record order.
    pub fn fault_events(&self) -> Vec<TraceEvent> {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.category == FAULT_CATEGORY)
            .cloned()
            .collect()
    }

    /// Record a span start.
    pub fn begin(
        &self,
        time: SimTime,
        category: &'static str,
        label: impl Into<String>,
        track: u32,
    ) {
        self.record(time, category, label, TraceKind::Begin, track);
    }

    /// Record a span end.
    pub fn end(&self, time: SimTime, category: &'static str, label: impl Into<String>, track: u32) {
        self.record(time, category, label, TraceKind::End, track);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Remove and return all events recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.events.lock())
    }

    /// Reconstruct completed `(begin, end)` spans for one category,
    /// matching by `(track, label)` in FIFO order.
    pub fn spans(&self, category: &'static str) -> Vec<Span> {
        let events = self.inner.events.lock();
        let mut open: Vec<(u32, String, SimTime)> = Vec::new();
        let mut out = Vec::new();
        for ev in events.iter().filter(|e| e.category == category) {
            match ev.kind {
                TraceKind::Begin => open.push((ev.track, ev.label.clone(), ev.time)),
                TraceKind::End => {
                    if let Some(pos) = open
                        .iter()
                        .position(|(t, l, _)| *t == ev.track && *l == ev.label)
                    {
                        let (track, label, start) = open.remove(pos);
                        out.push(Span {
                            category,
                            label,
                            track,
                            start,
                            end: ev.time,
                        });
                    }
                }
                TraceKind::Instant => {}
            }
        }
        out.sort_by_key(|s| (s.start, s.track));
        out
    }

    /// Serialize as Chrome trace-event JSON (load in `chrome://tracing` or
    /// Perfetto): begin/end become duration events (`B`/`E`), instants
    /// become `i`, tracks become thread ids.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for ev in self.inner.events.lock().iter() {
            let ph = match ev.kind {
                TraceKind::Begin => "B",
                TraceKind::End => "E",
                TraceKind::Instant => "i",
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                ev.label.replace('"', "'"),
                ev.category,
                ph,
                ev.time.as_nanos() / 1_000, // µs
                ev.track
            ));
        }
        out.push(']');
        out
    }

    /// Serialize all events as CSV (`time_ms,category,kind,track,label`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_ms,category,kind,track,label\n");
        for ev in self.inner.events.lock().iter() {
            let kind = match ev.kind {
                TraceKind::Instant => "instant",
                TraceKind::Begin => "begin",
                TraceKind::End => "end",
            };
            s.push_str(&format!(
                "{:.6},{},{},{},{}\n",
                ev.time.as_millis_f64(),
                ev.category,
                kind,
                ev.track,
                ev.label.replace(',', ";")
            ));
        }
        s
    }
}

/// A completed activity span reconstructed from begin/end events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Category the span was recorded under.
    pub category: &'static str,
    /// Label shared by the begin/end pair.
    pub label: String,
    /// Track identifier.
    pub track: u32,
    /// Span start time.
    pub start: SimTime,
    /// Span end time.
    pub end: SimTime,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> crate::time::SimDuration {
        self.end.duration_since(self.start)
    }

    /// Do two spans overlap in time (open intervals)?
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::new();
        tr.instant(t(1), "x", "a");
        assert!(tr.is_empty());
    }

    #[test]
    fn spans_are_matched_by_track_and_label() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.begin(t(0), "kernel", "k1", 0);
        tr.begin(t(1), "kernel", "k2", 1);
        tr.end(t(3), "kernel", "k1", 0);
        tr.end(t(5), "kernel", "k2", 1);
        let spans = tr.spans("kernel");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "k1");
        assert_eq!(spans[0].duration(), SimDuration::from_millis(3));
        assert!(spans[0].overlaps(&spans[1]));
    }

    #[test]
    fn non_overlapping_spans_detected() {
        let a = Span {
            category: "c",
            label: "a".into(),
            track: 0,
            start: t(0),
            end: t(2),
        };
        let b = Span {
            category: "c",
            label: "b".into(),
            track: 0,
            start: t(2),
            end: t(4),
        };
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn csv_export_contains_rows() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(2), "io", "h2d,start");
        let csv = tr.to_csv();
        assert!(csv.contains("2.000000,io,instant,0,h2d;start"));
    }

    #[test]
    fn chrome_trace_export_is_wellformed() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.begin(t(1), "kernel", "k1", 3);
        tr.end(t(2), "kernel", "k1", 3);
        tr.instant(t(3), "io", "x");
        let json = tr.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":1000"));
    }

    #[test]
    fn fault_events_are_filtered_by_category() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(1), "io", "h2d");
        tr.fault(t(2), "mq-drop:/gvm-req#0");
        tr.fault(t(3), "evict:rank1");
        let faults = tr.fault_events();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].label, "mq-drop:/gvm-req#0");
        assert_eq!(faults[0].category, FAULT_CATEGORY);
        assert_eq!(faults[1].time, t(3));
    }

    #[test]
    fn take_drains_buffer() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(1), "x", "a");
        assert_eq!(tr.take().len(), 1);
        assert!(tr.is_empty());
    }
}

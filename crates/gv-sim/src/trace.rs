//! Timeline recording.
//!
//! A [`Tracer`] collects timestamped events (instants and begin/end spans)
//! from anywhere in the simulation. The harness uses it to reconstruct
//! engine occupancy Gantt charts and to audit overlap (e.g. "did the H2D
//! copy of process 2 overlap kernel execution of process 1?").
//!
//! Recording is disabled by default; enabling costs one mutex acquisition
//! per event.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::kernel::{Pid, WaitKind};
use crate::time::SimTime;

/// Category under which injected-fault and recovery events are recorded
/// (see [`Tracer::fault`]).
pub const FAULT_CATEGORY: &str = "fault";

/// What kind of event a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A point event.
    Instant,
    /// Start of an activity span.
    Begin,
    /// End of an activity span.
    End,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulated timestamp.
    pub time: SimTime,
    /// Monotonic record sequence number, unique per tracer. Events with
    /// equal timestamps have a stable `(time, seq)` order equal to the
    /// order they were recorded in.
    pub seq: u64,
    /// Coarse category, e.g. `"h2d"`, `"kernel"`, `"gvm"`.
    pub category: &'static str,
    /// Free-form label, e.g. a kernel or process name.
    pub label: String,
    /// Point event or span boundary.
    pub kind: TraceKind,
    /// Track identifier grouping related events (engine id, process index).
    pub track: u32,
}

/// A structural defect found by [`Tracer::validate_spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanIssue {
    /// Category of the offending event.
    pub category: &'static str,
    /// Label of the offending event.
    pub label: String,
    /// Track of the offending event.
    pub track: u32,
    /// Timestamp of the offending event.
    pub time: SimTime,
    /// `true`: a `Begin` that never saw a matching `End`;
    /// `false`: an `End` with no open `Begin` on the same `(track, label)`.
    pub unmatched_begin: bool,
}

impl std::fmt::Display for SpanIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = if self.unmatched_begin {
            "Begin without matching End"
        } else {
            "End without matching Begin"
        };
        write!(
            f,
            "{what}: {}/{} track {} at {:.6} ms",
            self.category,
            self.label,
            self.track,
            self.time.as_millis_f64()
        )
    }
}

/// A happens-before/protocol/device record emitted by the instrumented
/// layers while [analysis recording](Tracer::set_analysis) is on. These are
/// deliberately label-based (no protocol types) so `gv-sim` stays agnostic
/// of the layers above it; `gv-analyze` interprets them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisRecord {
    /// One shared-memory access (read or write) with its captured clock.
    ShmAccess {
        /// Simulated timestamp of the access.
        time: SimTime,
        /// Accessing process.
        pid: Pid,
        /// Accessing process name (e.g. `"spmd-3"`, `"gvm"`).
        process: String,
        /// Segment name (e.g. `"/gvm-shm-2"`).
        segment: String,
        /// Byte offset of the access within the segment.
        offset: usize,
        /// Byte length of the access.
        len: usize,
        /// `true` for writes (and fills), `false` for reads.
        is_write: bool,
        /// The accessor's vector clock, ticked for this access.
        clock: VClock,
    },
    /// The GVM announced its scheduling policy at boot. Consumers (the
    /// conformance linter) use it to pick the flush-width rule: joint
    /// policies must flush exactly the barriered set, partial policies may
    /// flush any non-empty subset of it.
    ProtoSched {
        /// Simulated timestamp of the announcement (GVM boot).
        time: SimTime,
        /// GVM instance name: scopes the announcement when several GVMs
        /// (cluster placement) share one trace.
        gvm: String,
        /// Policy label: `joint`/`fcfs`/`adaptive`/`sjf`.
        policy: String,
        /// `true` when a flush may cover a strict subset of the barriered
        /// ranks.
        partial: bool,
    },
    /// A GVM request receipt (one protocol message observed server-side).
    Proto {
        /// Simulated timestamp of the receipt.
        time: SimTime,
        /// GVM instance name that received the request. Ranks are local to
        /// their GVM, so multi-GVM traces need this to keep per-rank
        /// protocol state separate.
        gvm: String,
        /// SPMD rank the request came from.
        rank: usize,
        /// Request kind label: `REQ`/`SND`/`STR`/`STP`/`RCV`/`RLS`.
        kind: &'static str,
        /// Client sequence number (0 = legacy unsequenced client).
        seq: u64,
    },
    /// A joint stream flush released the `STR` barrier for `ranks`.
    ProtoFlush {
        /// Simulated timestamp of the flush.
        time: SimTime,
        /// GVM instance name whose barrier flushed.
        gvm: String,
        /// Ranks whose barriered `STR` requests were acknowledged.
        ranks: Vec<usize>,
    },
    /// A rank was evicted from the GVM (fault tolerance).
    ProtoEvict {
        /// Simulated timestamp of the eviction.
        time: SimTime,
        /// GVM instance name that evicted the rank.
        gvm: String,
        /// The evicted rank.
        rank: usize,
    },
    /// A GPU device registered itself and its invariant parameters.
    DeviceRegistered {
        /// Dense per-tracer device ordinal (see [`Tracer::register_device`]).
        device: u32,
        /// The device's concurrent-kernel cap.
        max_concurrent_kernels: u32,
    },
    /// A DMA transfer started on a copy engine.
    CopyBegin {
        /// Simulated start time.
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Engine index: 0 = H2D engine, 1 = dedicated D2H engine.
        engine: u8,
        /// Command label (e.g. `"cmd-7"`).
        label: String,
    },
    /// A DMA transfer completed on a copy engine.
    CopyEnd {
        /// Simulated completion time.
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Engine index: 0 = H2D engine, 1 = dedicated D2H engine.
        engine: u8,
        /// Command label (e.g. `"cmd-7"`).
        label: String,
    },
    /// A kernel began executing on the SMs.
    KernelBegin {
        /// Simulated start time.
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Kernel label (e.g. `"vecadd-3"`).
        label: String,
    },
    /// A kernel finished executing.
    KernelEnd {
        /// Simulated completion time.
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Kernel label (e.g. `"vecadd-3"`).
        label: String,
    },
    /// A device allocation succeeded.
    Alloc {
        /// Simulated timestamp (engine clock hint).
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Allocation id (unique per device for the run).
        id: u64,
        /// Requested size in bytes.
        bytes: u64,
    },
    /// A device allocation was freed.
    Free {
        /// Simulated timestamp (engine clock hint).
        time: SimTime,
        /// Device ordinal.
        device: u32,
        /// Allocation id being released.
        id: u64,
    },
    /// One span of a staged transfer was processed by the buffer-lifecycle
    /// layer (whole payloads are a single span; chunked transfers emit one
    /// record per chunk). Layer-agnostic: spans are correlated to engine
    /// copies by `label` and to pool buffers by `buf`.
    StageChunk {
        /// Simulated timestamp the span finished staging.
        time: SimTime,
        /// Tracer ordinal of the device the transfer targets. Engine
        /// command labels are per-device counters, so the staging checker
        /// needs this to pair `label` with its [`AnalysisRecord::CopyEnd`].
        device: u32,
        /// SPMD rank the transfer belongs to.
        rank: usize,
        /// Transfer-group id: all spans of one payload share it and must
        /// tile `[0, payload)` exactly once.
        xfer: u64,
        /// `true` for input staging (shm → pinned → device), `false` for
        /// output staging (device → pinned → shm).
        h2d: bool,
        /// Byte offset of this span within the payload.
        offset: u64,
        /// Span length in bytes.
        len: u64,
        /// Total payload size the group tiles.
        payload: u64,
        /// Pool buffer id backing the span (0 = not pool-managed).
        buf: u64,
        /// Engine command label (`"cmd-N"`) when an async copy was issued
        /// for this span; empty when the span was staged without one.
        label: String,
    },
    /// The transfer planner committed to a chunk count for one payload
    /// before emitting that transfer's [`AnalysisRecord::StageChunk`]
    /// spans. The staging checker cross-validates the plan against the
    /// spans actually staged, so adaptive chunk sizing stays auditable.
    StagePlan {
        /// Simulated timestamp the plan was made.
        time: SimTime,
        /// SPMD rank the transfer belongs to.
        rank: usize,
        /// Transfer-group id the plan governs (matches the spans' `xfer`).
        xfer: u64,
        /// Total payload size the plan tiles.
        payload: u64,
        /// Chosen chunk count: the transfer must emit exactly `k` spans.
        k: u32,
        /// Configured chunk cap in force when the choice was made.
        cap: u32,
        /// `true` when the model-driven adaptive chooser picked `k`,
        /// `false` for a fixed `PipelineConfig::chunks` plan.
        adaptive: bool,
    },
    /// A pinned staging buffer was acquired from the pool.
    PoolAcquire {
        /// Simulated timestamp of the acquire.
        time: SimTime,
        /// Pool buffer id (unique per tracer for the run).
        buf: u64,
        /// Size-class capacity of the buffer in bytes.
        bytes: u64,
        /// `true` when the buffer was recycled from a free list rather
        /// than freshly allocated.
        hit: bool,
    },
    /// A pinned staging buffer was returned to the pool's free list. Must
    /// never happen while a copy referencing the buffer is in flight.
    PoolRecycle {
        /// Simulated timestamp of the recycle.
        time: SimTime,
        /// Pool buffer id being recycled.
        buf: u64,
    },
    /// A cluster placement front-end declared one managed device and the
    /// capacity vector its admission decisions are charged against. Emitted
    /// once per device at install; the co-residency checker validates every
    /// [`AnalysisRecord::ClusterPlace`] against these declarations.
    ClusterDevice {
        /// Cluster-local device index (position in the front-end's device
        /// list, not the tracer's dense engine ordinal).
        device: u32,
        /// Device-memory capacity in bytes (the placement mem dimension).
        mem_bytes: u64,
        /// Concurrent-session capacity (the placement kernel-slot
        /// dimension).
        kernel_slots: u32,
    },
    /// A VGPU session became resident on a device: the placement decision
    /// took effect and the session's demand now occupies capacity there.
    ClusterPlace {
        /// Simulated timestamp the session became resident.
        time: SimTime,
        /// Cluster-wide VGPU session id.
        vgpu: u64,
        /// Tenant the session belongs to (DRF accounting unit).
        tenant: u64,
        /// Gang the session belongs to, if any. All placements sharing a
        /// gang id must name the same device (all-or-nothing co-placement).
        gang: Option<u64>,
        /// Cluster-local device index the session landed on.
        device: u32,
        /// Admission wave (0 = first; queued groups land in later waves).
        wave: u32,
        /// Device-memory demand charged against the device, in bytes.
        mem_bytes: u64,
    },
    /// A VGPU session left its device (normal completion or eviction); its
    /// demand no longer occupies capacity there.
    ClusterEvict {
        /// Simulated timestamp the session left.
        time: SimTime,
        /// Cluster-wide VGPU session id.
        vgpu: u64,
        /// Cluster-local device index the session left.
        device: u32,
    },
    /// A GVM declared the device-memory quota governing one rank's VGPU
    /// session, at boot. The quota checker validates every subsequent
    /// [`AnalysisRecord::QuotaCharge`] for that rank against this cap.
    QuotaSet {
        /// Simulated timestamp of the declaration (GVM boot).
        time: SimTime,
        /// GVM instance name (scopes ranks in multi-GVM traces).
        gvm: String,
        /// SPMD rank the quota applies to.
        rank: usize,
        /// Resolved cap in bytes; `0` means unlimited.
        quota: u64,
        /// The rank's declared device-memory demand in bytes.
        demand: u64,
    },
    /// Device bytes were charged against a rank's quota (admission-time
    /// allocation of its working set). Charged usage must never exceed the
    /// rank's declared quota.
    QuotaCharge {
        /// Simulated timestamp of the charge.
        time: SimTime,
        /// GVM instance name.
        gvm: String,
        /// SPMD rank being charged.
        rank: usize,
        /// Bytes charged by this event.
        bytes: u64,
        /// The rank's total charged bytes after this event.
        charged: u64,
    },
    /// Device bytes were credited back to a rank's quota (the working set
    /// was parked, freed, or reclaimed by eviction). Credits must balance
    /// charges to zero by the end of a completed run.
    QuotaCredit {
        /// Simulated timestamp of the credit.
        time: SimTime,
        /// GVM instance name.
        gvm: String,
        /// SPMD rank being credited.
        rank: usize,
        /// Bytes credited by this event.
        bytes: u64,
        /// The rank's total charged bytes after this event.
        charged: u64,
    },
    /// An idle-parked device allocation was demand-swapped out to pooled
    /// pinned host staging to relieve VRAM pressure: its bytes moved D2H
    /// into staging buffer `buf` and the device allocation was freed.
    SwapOut {
        /// Simulated timestamp the swap-out completed.
        time: SimTime,
        /// GVM instance name.
        gvm: String,
        /// Tracer ordinal of the device the allocation lived on.
        device: u32,
        /// Staging-pool buffer id now holding the swapped bytes.
        buf: u64,
        /// Size of the swapped working set in bytes.
        bytes: u64,
    },
    /// A swapped-out working set was restored to the device on next touch:
    /// re-allocated and moved H2D out of staging buffer `buf`, which is
    /// then recycled. Every swap-in must pair with an outstanding
    /// [`AnalysisRecord::SwapOut`] of the same buffer and size.
    SwapIn {
        /// Simulated timestamp the swap-in was issued.
        time: SimTime,
        /// GVM instance name.
        gvm: String,
        /// Tracer ordinal of the device the allocation returns to.
        device: u32,
        /// Staging-pool buffer id the bytes were restored from.
        buf: u64,
        /// Size of the restored working set in bytes.
        bytes: u64,
    },
    /// The GVM exported a pinned staging lease as a shared-memory segment
    /// and handed the owning rank a zero-copy descriptor for it (REQ/ACK
    /// time). The staging checker validates every subsequent
    /// [`AnalysisRecord::DescUse`] of the buffer against the newest grant's
    /// generation, and treats client writes to `segment` between a rank's
    /// `SND` receipt and its `RCV` receipt as a race.
    DescGrant {
        /// Simulated timestamp of the grant.
        time: SimTime,
        /// GVM instance name that issued the grant.
        gvm: String,
        /// SPMD rank the descriptor was handed to.
        rank: usize,
        /// Exported segment name (e.g. `"/gvm-shm-2"`).
        segment: String,
        /// Staging-pool buffer id backing the segment.
        buf: u64,
        /// Lease generation stamped into the descriptor.
        generation: u64,
        /// Descriptor extent in bytes.
        len: u64,
    },
    /// The GVM flush planner fused several co-flushed ranks' same-direction
    /// DMA ops into one coalesced batch submission. The manifest names
    /// every member sub-span in submission order; `gv-analyze`'s coalesce
    /// checker proves the manifest covers exactly the member spans (no
    /// overlap, no gap), that the member ranks are distinct, that each
    /// member's engine command exists on the named device and engine, that
    /// lease generations were current, and that no fusing crossed a
    /// quota/swap boundary.
    CoalesceOp {
        /// Simulated timestamp the batch was submitted.
        time: SimTime,
        /// GVM instance name that planned the batch.
        gvm: String,
        /// Tracer ordinal of the device the batch targets.
        device: u32,
        /// `true` for a fused H2D batch, `false` for D2H.
        h2d: bool,
        /// Total bytes moved by the whole batch.
        total: u64,
        /// Member ranks, in submission order (distinct).
        ranks: Vec<u64>,
        /// Member byte offsets within the fused batch (ascending from 0,
        /// gapless: `offsets[i+1] == offsets[i] + lens[i]`).
        offsets: Vec<u64>,
        /// Member payload lengths in bytes (sum == `total`).
        lens: Vec<u64>,
        /// Pool buffer id backing each member's staging lease.
        bufs: Vec<u64>,
        /// Lease generation of each member at submission time.
        gens: Vec<u64>,
        /// Engine command id of each member's sub-op (pairs with the
        /// per-device `CopyBegin`/`CopyEnd` label `"cmd-N"`).
        cmds: Vec<u64>,
    },
    /// A zero-copy descriptor was presented back to the GVM on `SND`.
    /// `ok` records the GVM's verdict; the staging checker independently
    /// re-derives staleness from the grant history, so a GVM that accepts
    /// a stale generation is caught even if it claims `ok`.
    DescUse {
        /// Simulated timestamp of the use.
        time: SimTime,
        /// GVM instance name that validated the descriptor.
        gvm: String,
        /// SPMD rank that presented the descriptor.
        rank: usize,
        /// Staging-pool buffer id the descriptor names.
        buf: u64,
        /// Generation carried by the presented descriptor.
        generation: u64,
        /// `true` when the GVM accepted the descriptor as current.
        ok: bool,
    },
    /// One blocked process observed at deadlock detection time. The engine
    /// emits one of these per live process, followed by a single
    /// [`AnalysisRecord::Deadlock`], whenever a run dies with
    /// `SimError::Deadlock` while analysis recording is on.
    DeadlockWaiter {
        /// Simulated time the deadlock was detected.
        time: SimTime,
        /// The blocked process.
        pid: Pid,
        /// Its name.
        process: String,
        /// The blocking operation it is stuck in.
        kind: WaitKind,
        /// The resource label it is waiting on (empty for a bare park).
        resource: String,
        /// Processes that could have unblocked it (wait-for edges).
        holders: Vec<Pid>,
    },
    /// The run deadlocked. Caps a group of
    /// [`AnalysisRecord::DeadlockWaiter`] records; `cycle` names a wait-for
    /// cycle (first pid repeated at the end) when one exists.
    Deadlock {
        /// Simulated time the deadlock was detected.
        time: SimTime,
        /// Wait-for cycle among the waiters, empty when acyclic.
        cycle: Vec<Pid>,
    },
    /// A condition-queue notify found no waiter to wake. Benign on its own
    /// (notifies may legitimately race ahead of waiters), but combined with
    /// a later deadlocked `CondWait` on the same resource it is the
    /// signature of a lost wakeup.
    NotifyLost {
        /// Simulated time of the notify.
        time: SimTime,
        /// The condition queue's resource label.
        resource: String,
    },
    /// The run ended. Whole-trace checkers that reason about terminal state
    /// (liveness) gate on this record so partially-dumped traces stay
    /// silent.
    RunEnd {
        /// Simulated end time.
        time: SimTime,
        /// True when every process finished before the horizon.
        completed: bool,
        /// True when the run died in a deadlock.
        deadlocked: bool,
    },
}

struct Inner {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    seq: AtomicU64,
    /// Happens-before / protocol / device analysis recording (independent
    /// of `enabled`; costs vector-clock maintenance across the kernel).
    analysis: AtomicBool,
    records: Mutex<Vec<AnalysisRecord>>,
    /// Engine clock mirror so layers without a `Ctx` (host-side allocator
    /// calls) can still timestamp analysis records.
    now_ns: AtomicU64,
    devices: AtomicU64,
    /// Run-global transfer-group id allocator (see
    /// [`Tracer::alloc_xfer_id`]).
    xfers: AtomicU64,
    /// Run-global staging-pool buffer id allocator (see
    /// [`Tracer::alloc_pool_buf_id`]).
    pool_bufs: AtomicU64,
}

/// Cheaply cloneable handle to a shared trace buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer with an empty buffer.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                events: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                analysis: AtomicBool::new(false),
                records: Mutex::new(Vec::new()),
                now_ns: AtomicU64::new(0),
                devices: AtomicU64::new(0),
                xfers: AtomicU64::new(1),
                pool_bufs: AtomicU64::new(1),
            }),
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording currently on?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn analysis recording (vector clocks + [`AnalysisRecord`]s) on or
    /// off. Independent of [`set_enabled`](Self::set_enabled): span/instant
    /// recording feeds Gantt charts, analysis recording feeds `gv-analyze`.
    pub fn set_analysis(&self, on: bool) {
        self.inner.analysis.store(on, Ordering::Relaxed);
    }

    /// Is analysis recording currently on?
    pub fn analysis_enabled(&self) -> bool {
        self.inner.analysis.load(Ordering::Relaxed)
    }

    /// Append one analysis record (no-op while analysis is off).
    pub fn record_analysis(&self, rec: AnalysisRecord) {
        if !self.analysis_enabled() {
            return;
        }
        self.inner.records.lock().push(rec);
    }

    /// Snapshot all analysis records recorded so far.
    pub fn analysis_snapshot(&self) -> Vec<AnalysisRecord> {
        self.inner.records.lock().clone()
    }

    /// Register a device with the tracer, returning a dense ordinal that
    /// disambiguates per-device command/stream ids in analysis records.
    pub fn register_device(&self, max_concurrent_kernels: u32) -> u32 {
        let ord = self.inner.devices.fetch_add(1, Ordering::Relaxed) as u32;
        self.record_analysis(AnalysisRecord::DeviceRegistered {
            device: ord,
            max_concurrent_kernels,
        });
        ord
    }

    /// Allocate a transfer-group id, unique across the whole run. Staging
    /// layers of different GVMs share one trace, so per-GVM counters would
    /// alias [`AnalysisRecord::StageChunk`] groups.
    pub fn alloc_xfer_id(&self) -> u64 {
        self.inner.xfers.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a staging-pool buffer id, unique across the whole run (the
    /// per-pool analogue of [`alloc_xfer_id`](Self::alloc_xfer_id)).
    pub fn alloc_pool_buf_id(&self) -> u64 {
        self.inner.pool_bufs.fetch_add(1, Ordering::Relaxed)
    }

    /// Mirror of the engine clock, updated on every time advance. Exact
    /// whenever the caller runs inside the simulation (only one process
    /// runs at a time); layers without a `Ctx` use it to timestamp records.
    pub fn now_hint(&self) -> SimTime {
        SimTime::from_nanos(self.inner.now_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn set_now_hint(&self, t: SimTime) {
        self.inner.now_ns.store(t.as_nanos(), Ordering::Relaxed);
    }

    /// Record one event (no-op while disabled).
    pub fn record(
        &self,
        time: SimTime,
        category: &'static str,
        label: impl Into<String>,
        kind: TraceKind,
        track: u32,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut events = self.inner.events.lock();
        // Sequence allocation under the buffer lock keeps `seq` order equal
        // to buffer order even if a host thread ever raced a process.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        events.push(TraceEvent {
            time,
            seq,
            category,
            label: label.into(),
            kind,
            track,
        });
    }

    /// Record a point event.
    pub fn instant(&self, time: SimTime, category: &'static str, label: impl Into<String>) {
        self.record(time, category, label, TraceKind::Instant, 0);
    }

    /// Record an injected-fault or recovery event (a point event under
    /// [`FAULT_CATEGORY`]). Fault-injection layers across the stack all
    /// funnel through here so a run's fault schedule can be replayed and
    /// diffed as part of its timeline.
    pub fn fault(&self, time: SimTime, label: impl Into<String>) {
        self.record(time, FAULT_CATEGORY, label, TraceKind::Instant, 0);
    }

    /// Point events recorded under [`FAULT_CATEGORY`], in record order.
    pub fn fault_events(&self) -> Vec<TraceEvent> {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.category == FAULT_CATEGORY)
            .cloned()
            .collect()
    }

    /// Record a span start.
    pub fn begin(
        &self,
        time: SimTime,
        category: &'static str,
        label: impl Into<String>,
        track: u32,
    ) {
        self.record(time, category, label, TraceKind::Begin, track);
    }

    /// Record a span end.
    pub fn end(&self, time: SimTime, category: &'static str, label: impl Into<String>, track: u32) {
        self.record(time, category, label, TraceKind::End, track);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all events recorded so far, in stable `(time, seq)` order.
    /// Timestamps alone can tie; the sequence number breaks ties in record
    /// order, so analyzers see one deterministic total order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = self.inner.events.lock().clone();
        events.sort_by_key(|e| (e.time, e.seq));
        events
    }

    /// Remove and return all events recorded so far (stable `(time, seq)`
    /// order, like [`snapshot`](Self::snapshot)).
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut *self.inner.events.lock());
        events.sort_by_key(|e| (e.time, e.seq));
        events
    }

    /// Validate span structure across every category: each `Begin` must
    /// have a matching later `End` on the same `(track, label)`, and no
    /// `End` may appear without an open `Begin`. Returns all defects found
    /// (empty = structurally sound).
    pub fn validate_spans(&self) -> Vec<SpanIssue> {
        let events = self.snapshot();
        let mut open: Vec<(&'static str, u32, String, SimTime)> = Vec::new();
        let mut issues = Vec::new();
        for ev in &events {
            match ev.kind {
                TraceKind::Instant => {}
                TraceKind::Begin => {
                    open.push((ev.category, ev.track, ev.label.clone(), ev.time));
                }
                TraceKind::End => {
                    match open.iter().position(|(c, t, l, _)| {
                        *c == ev.category && *t == ev.track && *l == ev.label
                    }) {
                        Some(pos) => {
                            open.remove(pos);
                        }
                        None => issues.push(SpanIssue {
                            category: ev.category,
                            label: ev.label.clone(),
                            track: ev.track,
                            time: ev.time,
                            unmatched_begin: false,
                        }),
                    }
                }
            }
        }
        for (category, track, label, time) in open {
            issues.push(SpanIssue {
                category,
                label,
                track,
                time,
                unmatched_begin: true,
            });
        }
        issues
    }

    /// Reconstruct completed `(begin, end)` spans for one category,
    /// matching by `(track, label)` in FIFO order.
    pub fn spans(&self, category: &'static str) -> Vec<Span> {
        let events = self.inner.events.lock();
        let mut open: Vec<(u32, String, SimTime)> = Vec::new();
        let mut out = Vec::new();
        for ev in events.iter().filter(|e| e.category == category) {
            match ev.kind {
                TraceKind::Begin => open.push((ev.track, ev.label.clone(), ev.time)),
                TraceKind::End => {
                    if let Some(pos) = open
                        .iter()
                        .position(|(t, l, _)| *t == ev.track && *l == ev.label)
                    {
                        let (track, label, start) = open.remove(pos);
                        out.push(Span {
                            category,
                            label,
                            track,
                            start,
                            end: ev.time,
                        });
                    }
                }
                TraceKind::Instant => {}
            }
        }
        out.sort_by_key(|s| (s.start, s.track));
        out
    }

    /// Serialize as Chrome trace-event JSON (load in `chrome://tracing` or
    /// Perfetto): begin/end become duration events (`B`/`E`), instants
    /// become `i`, tracks become thread ids.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for ev in self.inner.events.lock().iter() {
            let ph = match ev.kind {
                TraceKind::Begin => "B",
                TraceKind::End => "E",
                TraceKind::Instant => "i",
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                ev.label.replace('"', "'"),
                ev.category,
                ph,
                ev.time.as_nanos() / 1_000, // µs
                ev.track
            ));
        }
        out.push(']');
        out
    }

    /// Serialize all events as CSV (`time_ms,category,kind,track,label`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_ms,category,kind,track,label\n");
        for ev in self.inner.events.lock().iter() {
            let kind = match ev.kind {
                TraceKind::Instant => "instant",
                TraceKind::Begin => "begin",
                TraceKind::End => "end",
            };
            s.push_str(&format!(
                "{:.6},{},{},{},{}\n",
                ev.time.as_millis_f64(),
                ev.category,
                kind,
                ev.track,
                ev.label.replace(',', ";")
            ));
        }
        s
    }
}

/// A completed activity span reconstructed from begin/end events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Category the span was recorded under.
    pub category: &'static str,
    /// Label shared by the begin/end pair.
    pub label: String,
    /// Track identifier.
    pub track: u32,
    /// Span start time.
    pub start: SimTime,
    /// Span end time.
    pub end: SimTime,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> crate::time::SimDuration {
        self.end.duration_since(self.start)
    }

    /// Do two spans overlap in time (open intervals)?
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::new();
        tr.instant(t(1), "x", "a");
        assert!(tr.is_empty());
    }

    #[test]
    fn spans_are_matched_by_track_and_label() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.begin(t(0), "kernel", "k1", 0);
        tr.begin(t(1), "kernel", "k2", 1);
        tr.end(t(3), "kernel", "k1", 0);
        tr.end(t(5), "kernel", "k2", 1);
        let spans = tr.spans("kernel");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "k1");
        assert_eq!(spans[0].duration(), SimDuration::from_millis(3));
        assert!(spans[0].overlaps(&spans[1]));
    }

    #[test]
    fn non_overlapping_spans_detected() {
        let a = Span {
            category: "c",
            label: "a".into(),
            track: 0,
            start: t(0),
            end: t(2),
        };
        let b = Span {
            category: "c",
            label: "b".into(),
            track: 0,
            start: t(2),
            end: t(4),
        };
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn csv_export_contains_rows() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(2), "io", "h2d,start");
        let csv = tr.to_csv();
        assert!(csv.contains("2.000000,io,instant,0,h2d;start"));
    }

    #[test]
    fn chrome_trace_export_is_wellformed() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.begin(t(1), "kernel", "k1", 3);
        tr.end(t(2), "kernel", "k1", 3);
        tr.instant(t(3), "io", "x");
        let json = tr.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":1000"));
    }

    #[test]
    fn fault_events_are_filtered_by_category() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(1), "io", "h2d");
        tr.fault(t(2), "mq-drop:/gvm-req#0");
        tr.fault(t(3), "evict:rank1");
        let faults = tr.fault_events();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].label, "mq-drop:/gvm-req#0");
        assert_eq!(faults[0].category, FAULT_CATEGORY);
        assert_eq!(faults[1].time, t(3));
    }

    #[test]
    fn take_drains_buffer() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(1), "x", "a");
        assert_eq!(tr.take().len(), 1);
        assert!(tr.is_empty());
    }

    #[test]
    fn snapshot_orders_by_time_then_seq() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.instant(t(5), "x", "late");
        tr.instant(t(1), "x", "early"); // recorded second, earlier time
        tr.instant(t(1), "x", "early2");
        let evs = tr.snapshot();
        assert_eq!(evs[0].label, "early");
        assert_eq!(evs[1].label, "early2");
        assert_eq!(evs[2].label, "late");
        // Ties broken by monotonic seq in record order.
        assert!(evs[0].seq < evs[1].seq);
    }

    #[test]
    fn validate_spans_flags_unmatched_pairs() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.begin(t(0), "kernel", "ok", 0);
        tr.end(t(1), "kernel", "ok", 0);
        tr.begin(t(2), "kernel", "dangling", 1);
        tr.end(t(3), "h2d", "orphan", 2);
        let issues = tr.validate_spans();
        assert_eq!(issues.len(), 2);
        assert!(issues
            .iter()
            .any(|i| !i.unmatched_begin && i.label == "orphan"));
        assert!(issues
            .iter()
            .any(|i| i.unmatched_begin && i.label == "dangling"));
    }

    #[test]
    fn analysis_records_gated_by_flag() {
        let tr = Tracer::new();
        tr.record_analysis(AnalysisRecord::ProtoEvict {
            time: t(1),
            gvm: "gvm".to_string(),
            rank: 0,
        });
        assert!(tr.analysis_snapshot().is_empty());
        tr.set_analysis(true);
        tr.record_analysis(AnalysisRecord::ProtoEvict {
            time: t(2),
            gvm: "gvm".to_string(),
            rank: 3,
        });
        assert_eq!(tr.analysis_snapshot().len(), 1);
    }

    #[test]
    fn device_registration_allocates_dense_ordinals() {
        let tr = Tracer::new();
        tr.set_analysis(true);
        assert_eq!(tr.register_device(16), 0);
        assert_eq!(tr.register_device(16), 1);
        assert_eq!(tr.analysis_snapshot().len(), 2);
    }
}

//! Server-style resources.
//!
//! [`FifoServer`] models a device engine that serves requests one (or `k`)
//! at a time, each with a caller-computed service duration — the exact shape
//! of a DMA copy engine: `t_service = latency + bytes / bandwidth`, requests
//! from the same direction strictly serialized, FIFO order preserved.
//! Utilization accounting comes for free and is used by the harness to
//! report engine occupancy.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::process::Ctx;
use crate::sync::Semaphore;
use crate::time::{SimDuration, SimTime};

#[derive(Default)]
struct ServerStats {
    busy: SimDuration,
    requests: u64,
    last_end: SimTime,
}

/// A `k`-server FIFO queueing resource with per-request service times.
#[derive(Clone)]
pub struct FifoServer {
    sem: Semaphore,
    capacity: usize,
    stats: Arc<Mutex<ServerStats>>,
    name: &'static str,
}

impl FifoServer {
    /// A server able to process `capacity` requests concurrently.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity >= 1);
        FifoServer {
            sem: Semaphore::new(capacity),
            capacity,
            stats: Arc::new(Mutex::new(ServerStats::default())),
            name,
        }
    }

    /// The server's name (for traces).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Concurrency limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupy one server slot for `service` simulated time, queueing FIFO
    /// behind earlier requests. Returns the completion time.
    pub fn serve(&self, ctx: &mut Ctx, service: SimDuration) -> SimTime {
        self.sem.acquire(ctx);
        let start = ctx.now();
        ctx.tracer().begin(start, self.name, ctx.name(), 0);
        ctx.hold(service);
        let end = ctx.now();
        ctx.tracer().end(end, self.name, ctx.name(), 0);
        {
            let mut st = self.stats.lock();
            st.busy += service;
            st.requests += 1;
            st.last_end = st.last_end.max(end);
        }
        self.sem.release(ctx);
        end
    }

    /// Total busy time accumulated across all served requests.
    pub fn busy_time(&self) -> SimDuration {
        self.stats.lock().busy
    }

    /// Number of requests served to completion.
    pub fn requests_served(&self) -> u64 {
        self.stats.lock().requests
    }

    /// Completion time of the latest finished request.
    pub fn last_completion(&self) -> SimTime {
        self.stats.lock().last_end
    }

    /// Busy fraction over `[0, horizon]` (1.0 = always busy, per slot).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time().as_secs_f64() / (horizon.as_secs_f64() * self.capacity as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;

    #[test]
    fn single_server_serializes_fifo() {
        let mut sim = Simulation::new();
        let server = FifoServer::new("dma", 1);
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u64 {
            let server = server.clone();
            let ends = ends.clone();
            sim.spawn(&format!("req{i}"), move |ctx| {
                ctx.hold(SimDuration::from_millis(i)); // arrive staggered
                let end = server.serve(ctx, SimDuration::from_millis(10));
                ends.lock().push((i, end.as_millis_f64()));
            });
        }
        sim.run().unwrap();
        let ends = ends.lock().clone();
        assert_eq!(ends, vec![(0, 10.0), (1, 20.0), (2, 30.0)]);
        assert_eq!(server.busy_time(), SimDuration::from_millis(30));
        assert_eq!(server.requests_served(), 3);
    }

    #[test]
    fn dual_server_overlaps_two_requests() {
        let mut sim = Simulation::new();
        let server = FifoServer::new("dma2", 2);
        for i in 0..4u64 {
            let server = server.clone();
            sim.spawn(&format!("req{i}"), move |ctx| {
                server.serve(ctx, SimDuration::from_millis(10));
            });
        }
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 20.0);
        // Utilization: 40ms busy over 20ms horizon with 2 slots = 1.0.
        assert!((server.utilization(s.end_time) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_at_zero_horizon_is_zero() {
        let server = FifoServer::new("idle", 1);
        assert_eq!(server.utilization(SimTime::ZERO), 0.0);
    }
}

//! The discrete-event engine.
//!
//! A [`Simulation`] owns a set of coroutine-style *processes*, each backed by
//! an OS thread. Exactly one thread is ever runnable at a time: the engine
//! resumes a process, the process runs until it performs a *yielding*
//! operation (`hold`, `park`, `park_timeout`, or returning), and control
//! passes back to the engine. Because scheduling decisions are made from a
//! FIFO run queue and a `(time, sequence)`-ordered timer heap, runs are fully
//! deterministic for a fixed program.
//!
//! Non-yielding operations (`unpark`, `spawn`, channel pushes, …) mutate the
//! shared kernel state directly under a mutex; this is race-free because only
//! the single running process (or the engine, while no process runs) ever
//! touches it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use crate::clock::VClock;
use crate::process::Ctx;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Identifier of a simulation process. Stable for the life of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// Raw index (useful for dense per-process arrays in user code).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `Pid` from a raw index — only for reloading dumped
    /// analysis records, where pids are opaque labels. A forged `Pid` has
    /// no meaning inside a live simulation.
    pub fn from_index(i: usize) -> Pid {
        Pid(i as u32)
    }
}

/// Why a parked/held process was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First resume after spawn.
    Spawn,
    /// A `hold` elapsed or a `park_timeout` timed out.
    Timer,
    /// Another process called [`Ctx::unpark`].
    Unpark,
}

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No process is runnable, no timer is pending, yet processes are alive.
    Deadlock {
        /// Names of the processes that are still blocked.
        blocked: Vec<String>,
    },
    /// A process panicked; the panic message is captured when it is a string.
    ProcessPanicked {
        /// Name of the panicking process.
        name: String,
        /// Panic payload, when representable as text.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlock; blocked processes: {blocked:?}")
            }
            SimError::ProcessPanicked { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics describing a completed run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Total processes spawned over the run.
    pub processes_spawned: usize,
    /// Number of engine scheduling steps (resume/yield round trips).
    pub events_processed: u64,
    /// True when the run ended because every process finished (as opposed
    /// to hitting a `run_until` horizon).
    pub completed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// In the run queue (wake reason stored alongside).
    Ready,
    /// Currently executing on its thread.
    Running,
    /// Blocked awaiting an unpark or armed timer.
    Parked,
    /// Blocked in a `hold`; unparks are deferred via the token.
    Holding,
    /// Returned (or was terminated).
    Finished,
}

pub(crate) struct Slot {
    pub(crate) name: String,
    pub(crate) state: ProcState,
    /// Pending-unpark token (same semantics as `std::thread::park`).
    pub(crate) token: bool,
    /// Wake generation; bumped on every wake so stale timers are discarded.
    pub(crate) gen: u64,
    pub(crate) resume_tx: Option<Sender<WakeReason>>,
    pub(crate) join: Option<JoinHandle<()>>,
    /// Vector clock for happens-before analysis (maintained only while the
    /// tracer's analysis flag is on; empty otherwise).
    pub(crate) clock: VClock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    time: SimTime,
    seq: u64,
    pid: Pid,
    gen: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct State {
    pub(crate) now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<TimerEntry>>,
    runnable: VecDeque<(Pid, WakeReason)>,
    pub(crate) slots: Vec<Slot>,
    live: usize,
    terminating: bool,
}

impl State {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub(crate) fn arm_timer(&mut self, pid: Pid, at: SimTime) {
        let gen = self.slots[pid.index()].gen;
        let seq = self.next_seq();
        self.heap.push(Reverse(TimerEntry {
            time: at,
            seq,
            pid,
            gen,
        }));
    }

    pub(crate) fn make_ready(&mut self, pid: Pid, reason: WakeReason) {
        let slot = &mut self.slots[pid.index()];
        slot.state = ProcState::Ready;
        slot.gen += 1;
        self.runnable.push_back((pid, reason));
    }

    /// `unpark` semantics shared by `Ctx::unpark` and internal wakeups.
    pub(crate) fn unpark(&mut self, pid: Pid) {
        match self.slots[pid.index()].state {
            ProcState::Parked => self.make_ready(pid, WakeReason::Unpark),
            ProcState::Finished => {}
            // Running / Ready / Holding: remember the token for the next park.
            _ => self.slots[pid.index()].token = true,
        }
    }

    /// Happens-before edge `from → to`: tick `from`'s clock, then join it
    /// into `to`'s. Called on every unpark while analysis recording is on;
    /// safe for any target state because only one process runs at a time.
    pub(crate) fn propagate_clock(&mut self, from: Pid, to: Pid) {
        if from == to {
            return;
        }
        let snapshot = {
            let slot = &mut self.slots[from.index()];
            slot.clock.tick(from.index());
            slot.clock.clone()
        };
        self.slots[to.index()].clock.join(&snapshot);
    }
}

pub(crate) enum YieldOp {
    Hold(SimDuration),
    Park,
    ParkTimeout(SimDuration),
    Exit { panic_message: Option<String> },
}

pub(crate) struct YieldMsg {
    pub(crate) pid: Pid,
    pub(crate) op: YieldOp,
}

/// Shared between the engine, every process `Ctx`, and all sync primitives.
pub struct KernelShared {
    pub(crate) state: Mutex<State>,
    pub(crate) yield_tx: Sender<YieldMsg>,
    pub(crate) tracer: Tracer,
}

impl KernelShared {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.state.lock().now
    }

    pub(crate) fn spawn_process<F>(
        self: &Arc<Self>,
        name: &str,
        start_at: Option<SimTime>,
        parent: Option<Pid>,
        f: F,
    ) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let (resume_tx, resume_rx) = channel::bounded::<WakeReason>(1);
        let analysis = self.tracer.analysis_enabled();
        let mut state = self.state.lock();
        let pid = Pid(state.slots.len() as u32);
        // Spawn is a synchronization edge: the child inherits the parent's
        // (ticked) clock, so parent work before the spawn happens-before
        // everything the child does.
        let clock = match parent {
            Some(pp) if analysis => {
                let slot = &mut state.slots[pp.index()];
                slot.clock.tick(pp.index());
                slot.clock.clone()
            }
            _ => VClock::new(),
        };
        state.slots.push(Slot {
            name: name.to_string(),
            state: ProcState::Parked,
            token: false,
            gen: 0,
            resume_tx: Some(resume_tx),
            join: None,
            clock,
        });
        state.live += 1;
        match start_at {
            None => state.make_ready(pid, WakeReason::Spawn),
            Some(t) => {
                let t = t.max(state.now);
                state.arm_timer(pid, t);
            }
        }
        drop(state);

        let shared = Arc::clone(self);
        let thread_name = format!("sim:{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut ctx = Ctx::new(shared, pid, resume_rx);
                // Wait for the engine's first resume; if the simulation is
                // torn down before we ever run, just exit.
                if ctx.wait_resume().is_err() {
                    return;
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    (f)(&mut ctx);
                }));
                let panic_message = match result {
                    Ok(()) => None,
                    Err(payload) => {
                        if payload.downcast_ref::<Terminated>().is_some() {
                            // Orderly teardown: vanish without reporting.
                            return;
                        }
                        Some(panic_message(&*payload))
                    }
                };
                let _ = ctx.shared().yield_tx.send(YieldMsg {
                    pid,
                    op: YieldOp::Exit { panic_message },
                });
            })
            .expect("failed to spawn simulation process thread");

        self.state.lock().slots[pid.index()].join = Some(handle);
        pid
    }
}

/// Sentinel panic payload used to unwind process threads during teardown.
pub(crate) struct Terminated;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A discrete-event simulation: spawn processes, then [`run`](Self::run).
pub struct Simulation {
    shared: Arc<KernelShared>,
    yield_rx: Receiver<YieldMsg>,
    events: u64,
    ran: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Create an empty simulation at `t = 0`.
    pub fn new() -> Self {
        let (yield_tx, yield_rx) = channel::unbounded();
        let shared = Arc::new(KernelShared {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                runnable: VecDeque::new(),
                slots: Vec::new(),
                live: 0,
                terminating: false,
            }),
            yield_tx,
            tracer: Tracer::new(),
        });
        Simulation {
            shared,
            yield_rx,
            events: 0,
            ran: false,
        }
    }

    /// Handle to the shared kernel (used by sync primitives constructed
    /// outside any process).
    pub fn kernel(&self) -> Arc<KernelShared> {
        Arc::clone(&self.shared)
    }

    /// The trace recorder for this simulation (cheap to clone).
    pub fn tracer(&self) -> Tracer {
        self.shared.tracer.clone()
    }

    /// Spawn a root process that becomes runnable at `t = 0`.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, None, None, f)
    }

    /// Spawn a root process that first runs at simulated time `at`.
    pub fn spawn_at<F>(&mut self, at: SimTime, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, Some(at), None, f)
    }

    /// Run until all processes finish. Equivalent to
    /// `run_until(SimTime::MAX)` except that reaching the horizon is
    /// reported as completion.
    pub fn run(self) -> Result<Summary, SimError> {
        self.run_until(SimTime::MAX)
    }

    /// Run until all processes finish or simulated time would pass `limit`.
    pub fn run_until(mut self, limit: SimTime) -> Result<Summary, SimError> {
        self.ran = true;
        let result: Result<bool, SimError> = 'engine: loop {
            // Phase 1: drain the run queue.
            loop {
                let next = {
                    let mut st = self.shared.state.lock();
                    match st.runnable.pop_front() {
                        Some((pid, reason)) => {
                            st.slots[pid.index()].state = ProcState::Running;
                            Some((pid, reason))
                        }
                        None => None,
                    }
                };
                let Some((pid, reason)) = next else { break };
                self.events += 1;

                // Resume the process and wait for it to yield.
                let tx = {
                    let st = self.shared.state.lock();
                    st.slots[pid.index()]
                        .resume_tx
                        .clone()
                        .expect("resuming a terminated process")
                };
                tx.send(reason).expect("process thread hung up");
                let msg = self
                    .yield_rx
                    .recv()
                    .expect("all process threads disappeared");
                if let Some(err) = self.handle_yield(msg) {
                    break 'engine Err(err);
                }
            }
            // Phase 2: no runnable process — advance the clock.
            let more_runnable = !self.shared.state.lock().runnable.is_empty();
            if !more_runnable {
                if let Some(outcome) = self.advance_time(limit) {
                    break 'engine outcome;
                }
            }
        };

        self.terminate_all();
        result.map(|completed| {
            let st = self.shared.state.lock();
            Summary {
                end_time: st.now,
                processes_spawned: st.slots.len(),
                events_processed: self.events,
                completed,
            }
        })
    }

    /// Process one yield message; returns an error to abort the run.
    fn handle_yield(&mut self, msg: YieldMsg) -> Option<SimError> {
        let mut st = self.shared.state.lock();
        let pid = msg.pid;
        match msg.op {
            YieldOp::Hold(d) => {
                let at = st.now + d;
                st.slots[pid.index()].state = ProcState::Holding;
                st.arm_timer(pid, at);
            }
            YieldOp::Park => {
                let slot = &mut st.slots[pid.index()];
                if slot.token {
                    slot.token = false;
                    st.make_ready(pid, WakeReason::Unpark);
                } else {
                    slot.state = ProcState::Parked;
                }
            }
            YieldOp::ParkTimeout(d) => {
                let slot = &mut st.slots[pid.index()];
                if slot.token {
                    slot.token = false;
                    st.make_ready(pid, WakeReason::Unpark);
                } else {
                    slot.state = ProcState::Parked;
                    let at = st.now + d;
                    st.arm_timer(pid, at);
                }
            }
            YieldOp::Exit { panic_message } => {
                let slot = &mut st.slots[pid.index()];
                slot.state = ProcState::Finished;
                slot.resume_tx = None;
                let join = slot.join.take();
                let name = slot.name.clone();
                st.live -= 1;
                drop(st);
                if let Some(h) = join {
                    let _ = h.join();
                }
                if let Some(message) = panic_message {
                    return Some(SimError::ProcessPanicked { name, message });
                }
            }
        }
        None
    }

    /// Pop timers until a valid one is found, then advance the clock.
    /// Returns `Some(outcome)` when the run is over.
    fn advance_time(&mut self, limit: SimTime) -> Option<Result<bool, SimError>> {
        let mut st = self.shared.state.lock();
        loop {
            match st.heap.peek() {
                None => {
                    return if st.live == 0 {
                        Some(Ok(true))
                    } else {
                        let blocked = st
                            .slots
                            .iter()
                            .filter(|s| s.state != ProcState::Finished)
                            .map(|s| s.name.clone())
                            .collect();
                        Some(Err(SimError::Deadlock { blocked }))
                    };
                }
                Some(Reverse(entry)) => {
                    let entry = *entry;
                    let valid = {
                        let slot = &st.slots[entry.pid.index()];
                        slot.gen == entry.gen
                            && matches!(slot.state, ProcState::Parked | ProcState::Holding)
                    };
                    if !valid {
                        st.heap.pop();
                        continue;
                    }
                    if entry.time > limit {
                        // Horizon reached with pending work.
                        st.now = limit;
                        return Some(Ok(false));
                    }
                    st.heap.pop();
                    st.now = entry.time;
                    self.shared.tracer.set_now_hint(entry.time);
                    st.make_ready(entry.pid, WakeReason::Timer);
                    return None;
                }
            }
        }
    }

    /// Tear down any processes still alive (horizon stops, deadlocks,
    /// panics): dropping their resume senders makes their next blocking
    /// receive unwind with the [`Terminated`] sentinel.
    fn terminate_all(&mut self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock();
            st.terminating = true;
            st.slots
                .iter_mut()
                .filter(|s| s.state != ProcState::Finished)
                .filter_map(|s| {
                    s.resume_tx = None;
                    s.state = ProcState::Finished;
                    s.join.take()
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Drain any Exit messages raced in during teardown.
        while self.yield_rx.try_recv().is_ok() {}
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        if !self.ran {
            self.terminate_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes_at_zero() {
        let sim = Simulation::new();
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, SimTime::ZERO);
        assert!(s.completed);
        assert_eq!(s.processes_spawned, 0);
    }

    #[test]
    fn single_process_holds_advance_clock() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            ctx.hold(SimDuration::from_millis(7));
            assert_eq!(ctx.now(), SimTime::from_nanos(12_000_000));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 12.0);
    }

    #[test]
    fn two_processes_interleave_deterministically() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let order = Arc::new(AtomicU64::new(0));
        let mut sim = Simulation::new();
        let (o1, o2) = (order.clone(), order.clone());
        sim.spawn("a", move |ctx| {
            ctx.hold(SimDuration::from_millis(2));
            // a wakes at t=2, after b's t=1 wake.
            assert_eq!(o1.fetch_add(1, Ordering::SeqCst), 1);
        });
        sim.spawn("b", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            assert_eq!(o2.fetch_add(1, Ordering::SeqCst), 0);
        });
        sim.run().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut sim = Simulation::new();
        let kernel = sim.kernel();
        let target = sim.spawn("sleeper", |ctx| {
            let reason = ctx.park();
            assert_eq!(reason, WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 3.0);
        });
        let _ = kernel;
        sim.spawn("waker", move |ctx| {
            ctx.hold(SimDuration::from_millis(3));
            ctx.unpark(target);
        });
        sim.run().unwrap();
    }

    #[test]
    fn unpark_token_is_remembered() {
        let mut sim = Simulation::new();
        let target = sim.spawn("late-parker", |ctx| {
            ctx.hold(SimDuration::from_millis(10));
            // Unpark happened at t=1 while we were holding: token redeems now.
            assert_eq!(ctx.park(), WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 10.0);
        });
        sim.spawn("early-waker", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        sim.run().unwrap();
    }

    #[test]
    fn park_timeout_fires_timer() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            let reason = ctx.park_timeout(SimDuration::from_millis(4));
            assert_eq!(reason, WakeReason::Timer);
            assert_eq!(ctx.now().as_millis_f64(), 4.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn park_timeout_unparked_early_cancels_timer() {
        let mut sim = Simulation::new();
        let target = sim.spawn("p", |ctx| {
            let reason = ctx.park_timeout(SimDuration::from_millis(100));
            assert_eq!(reason, WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 1.0);
            // The stale timer must not wake us again.
            ctx.hold(SimDuration::from_millis(500));
        });
        sim.spawn("w", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 501.0);
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", |ctx| {
            ctx.park();
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec!["stuck"]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bomb", |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bomb");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new();
        sim.spawn("long", |ctx| {
            ctx.hold(SimDuration::from_secs(100));
        });
        let s = sim.run_until(SimTime::from_nanos(5_000)).unwrap();
        assert!(!s.completed);
        assert_eq!(s.end_time.as_nanos(), 5_000);
    }

    #[test]
    fn nested_spawn_runs_child() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("child", |c| {
                c.hold(SimDuration::from_millis(2));
            });
            assert_eq!(child.index(), 1);
            ctx.hold(SimDuration::from_millis(5));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.processes_spawned, 2);
        assert_eq!(s.end_time.as_millis_f64(), 5.0);
    }

    #[test]
    fn spawn_at_delays_first_run() {
        let mut sim = Simulation::new();
        sim.spawn_at(SimTime::from_nanos(7_000_000), "late", |ctx| {
            assert_eq!(ctx.now().as_millis_f64(), 7.0);
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 7.0);
    }

    #[test]
    fn yield_now_lets_peer_run_at_same_time() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let peer_ran = Arc::new(AtomicBool::new(false));
        let flag = peer_ran.clone();
        let mut sim = Simulation::new();
        sim.spawn("a", move |ctx| {
            ctx.yield_now();
            assert!(flag.load(Ordering::SeqCst));
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        let flag2 = peer_ran.clone();
        sim.spawn("b", move |_ctx| {
            flag2.store(true, Ordering::SeqCst);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dropping_unran_simulation_reaps_threads() {
        let mut sim = Simulation::new();
        sim.spawn("never-run", |ctx| {
            ctx.park();
        });
        drop(sim); // must not hang
    }
}

//! The discrete-event engine.
//!
//! A [`Simulation`] owns a set of coroutine-style *processes*, each backed by
//! an OS thread. Exactly one thread is ever runnable at a time: the engine
//! resumes a process, the process runs until it performs a *yielding*
//! operation (`hold`, `park`, `park_timeout`, or returning), and control
//! passes back to the engine. Because scheduling decisions are made from a
//! FIFO run queue and a `(time, sequence)`-ordered timer heap, runs are fully
//! deterministic for a fixed program.
//!
//! Non-yielding operations (`unpark`, `spawn`, channel pushes, …) mutate the
//! shared kernel state directly under a mutex; this is race-free because only
//! the single running process (or the engine, while no process runs) ever
//! touches it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use crate::clock::VClock;
use crate::oracle::{Candidate, DecisionKind, OracleHandle};
use crate::process::Ctx;
use crate::time::{SimDuration, SimTime};
use crate::trace::{AnalysisRecord, Tracer};

/// Identifier of a simulation process. Stable for the life of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// Raw index (useful for dense per-process arrays in user code).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `Pid` from a raw index — only for reloading dumped
    /// analysis records, where pids are opaque labels. A forged `Pid` has
    /// no meaning inside a live simulation.
    pub fn from_index(i: usize) -> Pid {
        Pid(i as u32)
    }
}

/// Why a parked/held process was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First resume after spawn.
    Spawn,
    /// A `hold` elapsed or a `park_timeout` timed out.
    Timer,
    /// Another process called [`Ctx::unpark`].
    Unpark,
}

/// What blocking operation a parked process is stuck in. Set by the sync
/// primitives (channels, semaphores, barriers, gates, condition queues)
/// just before they park, so a deadlock report can say *why* each process
/// is blocked rather than just naming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocked in a channel/message-queue receive.
    Recv,
    /// Blocked sending on a full bounded channel.
    Send,
    /// Blocked acquiring a semaphore permit.
    SemAcquire,
    /// Blocked at a barrier awaiting the remaining parties.
    BarrierWait,
    /// Blocked on a gate that has not opened.
    GateWait,
    /// Blocked on a condition queue awaiting a notify.
    CondWait,
    /// A bare `Ctx::park` with no recorded cause.
    Park,
}

impl WaitKind {
    /// Stable label used by the trace dump format and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            WaitKind::Recv => "recv",
            WaitKind::Send => "send",
            WaitKind::SemAcquire => "sem-acquire",
            WaitKind::BarrierWait => "barrier-wait",
            WaitKind::GateWait => "gate-wait",
            WaitKind::CondWait => "cond-wait",
            WaitKind::Park => "park",
        }
    }

    /// Inverse of [`label`](Self::label) (for reloading dumped traces).
    pub fn from_label(s: &str) -> Option<WaitKind> {
        Some(match s {
            "recv" => WaitKind::Recv,
            "send" => WaitKind::Send,
            "sem-acquire" => WaitKind::SemAcquire,
            "barrier-wait" => WaitKind::BarrierWait,
            "gate-wait" => WaitKind::GateWait,
            "cond-wait" => WaitKind::CondWait,
            "park" => WaitKind::Park,
            _ => return None,
        })
    }
}

/// Why a blocked process is waiting, and on whom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitCause {
    /// The blocking operation.
    pub kind: WaitKind,
    /// The resource being waited on (channel label, semaphore label, …).
    pub resource: String,
    /// Processes that could plausibly unblock the waiter (channel peers,
    /// semaphore holders). Wait-for cycle detection follows these edges.
    pub holders: Vec<Pid>,
}

/// One blocked process in a [`SimError::Deadlock`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcess {
    /// The blocked process.
    pub pid: Pid,
    /// Its name.
    pub name: String,
    /// Why it is blocked (`None` when it parked without recording a cause).
    pub cause: Option<WaitCause>,
    /// Rendered state of each holder in `cause` at detection time, e.g.
    /// `"gvm-0 (parked)"`. Parallel to `cause.holders`.
    pub holder_states: Vec<String>,
}

impl BlockedProcess {
    /// One-line description: `name: recv on '/gvm-req' (peers: gvm (parked))`.
    pub fn describe(&self) -> String {
        match &self.cause {
            None => format!("{}: parked (no wait cause recorded)", self.name),
            Some(c) => {
                let mut s = format!("{}: {} on '{}'", self.name, c.kind.label(), c.resource);
                if !self.holder_states.is_empty() {
                    s.push_str(&format!(" (peers: {})", self.holder_states.join(", ")));
                }
                s
            }
        }
    }
}

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No process is runnable, no timer is pending, yet processes are alive.
    Deadlock {
        /// The processes that are still blocked, with their wait causes.
        blocked: Vec<BlockedProcess>,
        /// A wait-for cycle among the blocked processes (first element
        /// repeated at the end), empty when the deadlock is acyclic (e.g. a
        /// lone process waiting on a message that never comes).
        cycle: Vec<Pid>,
    },
    /// A process panicked; the panic message is captured when it is a string.
    ProcessPanicked {
        /// Name of the panicking process.
        name: String,
        /// Panic payload, when representable as text.
        message: String,
    },
}

impl SimError {
    /// Names of the blocked processes for a deadlock (empty otherwise).
    pub fn blocked_names(&self) -> Vec<String> {
        match self {
            SimError::Deadlock { blocked, .. } => blocked.iter().map(|b| b.name.clone()).collect(),
            SimError::ProcessPanicked { .. } => Vec::new(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked, cycle } => {
                write!(f, "simulation deadlock; {} blocked: ", blocked.len())?;
                let descs: Vec<String> = blocked.iter().map(|b| b.describe()).collect();
                write!(f, "{}", descs.join("; "))?;
                if !cycle.is_empty() {
                    let names: Vec<&str> = cycle
                        .iter()
                        .map(|p| {
                            blocked
                                .iter()
                                .find(|b| b.pid == *p)
                                .map(|b| b.name.as_str())
                                .unwrap_or("?")
                        })
                        .collect();
                    write!(f, "; wait-for cycle: {}", names.join(" -> "))?;
                }
                Ok(())
            }
            SimError::ProcessPanicked { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics describing a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Total processes spawned over the run.
    pub processes_spawned: usize,
    /// Number of engine scheduling steps (resume/yield round trips).
    pub events_processed: u64,
    /// True when the run ended because every process finished (as opposed
    /// to hitting a `run_until` horizon).
    pub completed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// In the run queue (wake reason stored alongside).
    Ready,
    /// Currently executing on its thread.
    Running,
    /// Blocked awaiting an unpark or armed timer.
    Parked,
    /// Blocked in a `hold`; unparks are deferred via the token.
    Holding,
    /// Returned (or was terminated).
    Finished,
}

pub(crate) struct Slot {
    pub(crate) name: String,
    pub(crate) state: ProcState,
    /// Pending-unpark token (same semantics as `std::thread::park`).
    pub(crate) token: bool,
    /// Wake generation; bumped on every wake so stale timers are discarded.
    pub(crate) gen: u64,
    pub(crate) resume_tx: Option<Sender<WakeReason>>,
    pub(crate) join: Option<JoinHandle<()>>,
    /// Vector clock for happens-before analysis (maintained only while the
    /// tracer's analysis flag is on; empty otherwise).
    pub(crate) clock: VClock,
    /// Why this process is blocked, recorded by sync primitives before
    /// parking and cleared on wake. Read by deadlock reporting.
    pub(crate) wait: Option<WaitCause>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    time: SimTime,
    seq: u64,
    pid: Pid,
    gen: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct State {
    pub(crate) now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<TimerEntry>>,
    runnable: VecDeque<(Pid, WakeReason)>,
    pub(crate) slots: Vec<Slot>,
    live: usize,
    terminating: bool,
}

impl State {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub(crate) fn arm_timer(&mut self, pid: Pid, at: SimTime) {
        let gen = self.slots[pid.index()].gen;
        let seq = self.next_seq();
        self.heap.push(Reverse(TimerEntry {
            time: at,
            seq,
            pid,
            gen,
        }));
    }

    pub(crate) fn make_ready(&mut self, pid: Pid, reason: WakeReason) {
        let slot = &mut self.slots[pid.index()];
        slot.state = ProcState::Ready;
        slot.gen += 1;
        slot.wait = None;
        self.runnable.push_back((pid, reason));
    }

    pub(crate) fn set_wait_cause(&mut self, pid: Pid, cause: WaitCause) {
        self.slots[pid.index()].wait = Some(cause);
    }

    /// `unpark` semantics shared by `Ctx::unpark` and internal wakeups.
    pub(crate) fn unpark(&mut self, pid: Pid) {
        match self.slots[pid.index()].state {
            ProcState::Parked => self.make_ready(pid, WakeReason::Unpark),
            ProcState::Finished => {}
            // Running / Ready / Holding: remember the token for the next park.
            _ => self.slots[pid.index()].token = true,
        }
    }

    /// Happens-before edge `from → to`: tick `from`'s clock, then join it
    /// into `to`'s. Called on every unpark while analysis recording is on;
    /// safe for any target state because only one process runs at a time.
    pub(crate) fn propagate_clock(&mut self, from: Pid, to: Pid) {
        if from == to {
            return;
        }
        let snapshot = {
            let slot = &mut self.slots[from.index()];
            slot.clock.tick(from.index());
            slot.clock.clone()
        };
        self.slots[to.index()].clock.join(&snapshot);
    }
}

pub(crate) enum YieldOp {
    Hold(SimDuration),
    Park,
    ParkTimeout(SimDuration),
    Exit { panic_message: Option<String> },
}

pub(crate) struct YieldMsg {
    pub(crate) pid: Pid,
    pub(crate) op: YieldOp,
}

/// Shared between the engine, every process `Ctx`, and all sync primitives.
pub struct KernelShared {
    pub(crate) state: Mutex<State>,
    pub(crate) yield_tx: Sender<YieldMsg>,
    pub(crate) tracer: Tracer,
}

impl KernelShared {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.state.lock().now
    }

    pub(crate) fn spawn_process<F>(
        self: &Arc<Self>,
        name: &str,
        start_at: Option<SimTime>,
        parent: Option<Pid>,
        f: F,
    ) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let (resume_tx, resume_rx) = channel::bounded::<WakeReason>(1);
        let analysis = self.tracer.analysis_enabled();
        let mut state = self.state.lock();
        let pid = Pid(state.slots.len() as u32);
        // Spawn is a synchronization edge: the child inherits the parent's
        // (ticked) clock, so parent work before the spawn happens-before
        // everything the child does.
        let clock = match parent {
            Some(pp) if analysis => {
                let slot = &mut state.slots[pp.index()];
                slot.clock.tick(pp.index());
                slot.clock.clone()
            }
            _ => VClock::new(),
        };
        state.slots.push(Slot {
            name: name.to_string(),
            state: ProcState::Parked,
            token: false,
            gen: 0,
            resume_tx: Some(resume_tx),
            join: None,
            clock,
            wait: None,
        });
        state.live += 1;
        match start_at {
            None => state.make_ready(pid, WakeReason::Spawn),
            Some(t) => {
                let t = t.max(state.now);
                state.arm_timer(pid, t);
            }
        }
        drop(state);

        install_teardown_panic_filter();
        let shared = Arc::clone(self);
        let thread_name = format!("sim:{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut ctx = Ctx::new(shared, pid, resume_rx);
                // Wait for the engine's first resume; if the simulation is
                // torn down before we ever run, just exit.
                if ctx.wait_resume().is_err() {
                    return;
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    (f)(&mut ctx);
                }));
                let panic_message = match result {
                    Ok(()) => None,
                    Err(payload) => {
                        if payload.downcast_ref::<Terminated>().is_some() {
                            // Orderly teardown: vanish without reporting.
                            return;
                        }
                        Some(panic_message(&*payload))
                    }
                };
                let _ = ctx.shared().yield_tx.send(YieldMsg {
                    pid,
                    op: YieldOp::Exit { panic_message },
                });
            })
            .expect("failed to spawn simulation process thread");

        self.state.lock().slots[pid.index()].join = Some(handle);
        pid
    }
}

/// Sentinel panic payload used to unwind process threads during teardown.
pub(crate) struct Terminated;

/// Keep the orderly [`Terminated`] unwind out of stderr: the default panic
/// hook would print a `Box<dyn Any>` backtrace for every process parked at
/// teardown (horizon stops, deadlock replays). Installed once, chaining to
/// the previous hook for every real panic.
fn install_teardown_panic_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Terminated>().is_none() {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A discrete-event simulation: spawn processes, then [`run`](Self::run).
pub struct Simulation {
    shared: Arc<KernelShared>,
    yield_rx: Receiver<YieldMsg>,
    events: u64,
    ran: bool,
    oracle: Option<OracleHandle>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Create an empty simulation at `t = 0`.
    pub fn new() -> Self {
        let (yield_tx, yield_rx) = channel::unbounded();
        let shared = Arc::new(KernelShared {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                runnable: VecDeque::new(),
                slots: Vec::new(),
                live: 0,
                terminating: false,
            }),
            yield_tx,
            tracer: Tracer::new(),
        });
        Simulation {
            shared,
            yield_rx,
            events: 0,
            ran: false,
            oracle: None,
        }
    }

    /// Install a scheduling oracle. The oracle is consulted whenever the
    /// engine has more than one candidate — run-queue picks and same-time
    /// timer tie-breaks — and its choices fully determine the schedule.
    /// With no oracle installed the engine always takes the FIFO/arm-order
    /// default (index 0), preserving the historical behavior.
    pub fn set_oracle(&mut self, oracle: OracleHandle) {
        self.oracle = Some(oracle);
    }

    /// Handle to the shared kernel (used by sync primitives constructed
    /// outside any process).
    pub fn kernel(&self) -> Arc<KernelShared> {
        Arc::clone(&self.shared)
    }

    /// The trace recorder for this simulation (cheap to clone).
    pub fn tracer(&self) -> Tracer {
        self.shared.tracer.clone()
    }

    /// Spawn a root process that becomes runnable at `t = 0`.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, None, None, f)
    }

    /// Spawn a root process that first runs at simulated time `at`.
    pub fn spawn_at<F>(&mut self, at: SimTime, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, Some(at), None, f)
    }

    /// Run until all processes finish. Equivalent to
    /// `run_until(SimTime::MAX)` except that reaching the horizon is
    /// reported as completion.
    pub fn run(self) -> Result<Summary, SimError> {
        self.run_until(SimTime::MAX)
    }

    /// Run until all processes finish or simulated time would pass `limit`.
    pub fn run_until(mut self, limit: SimTime) -> Result<Summary, SimError> {
        self.ran = true;
        let result: Result<bool, SimError> = 'engine: loop {
            // Phase 1: drain the run queue.
            loop {
                let next = {
                    let mut st = self.shared.state.lock();
                    if st.runnable.is_empty() {
                        None
                    } else {
                        // The FIFO front is the default; an installed oracle
                        // may pick any ready process instead. Consulting it
                        // under the state lock is fine: no process is
                        // running, and oracles never call back into the
                        // kernel.
                        let idx = match (&self.oracle, st.runnable.len()) {
                            (Some(oracle), n) if n > 1 => {
                                let candidates = candidates_of(&st, st.runnable.iter().copied());
                                let now = st.now;
                                oracle
                                    .lock()
                                    .choose(DecisionKind::Run, now, &candidates)
                                    .min(n - 1)
                            }
                            _ => 0,
                        };
                        let (pid, reason) = st.runnable.remove(idx).expect("oracle index in range");
                        st.slots[pid.index()].state = ProcState::Running;
                        Some((pid, reason))
                    }
                };
                let Some((pid, reason)) = next else { break };
                self.events += 1;

                // Resume the process and wait for it to yield.
                let tx = {
                    let st = self.shared.state.lock();
                    st.slots[pid.index()]
                        .resume_tx
                        .clone()
                        .expect("resuming a terminated process")
                };
                tx.send(reason).expect("process thread hung up");
                let msg = self
                    .yield_rx
                    .recv()
                    .expect("all process threads disappeared");
                if let Some(err) = self.handle_yield(msg) {
                    break 'engine Err(err);
                }
            }
            // Phase 2: no runnable process — advance the clock.
            let more_runnable = !self.shared.state.lock().runnable.is_empty();
            if !more_runnable {
                if let Some(outcome) = self.advance_time(limit) {
                    break 'engine outcome;
                }
            }
        };

        if self.shared.tracer.analysis_enabled() {
            // Terminal record: tells whole-trace checkers (liveness) the
            // run actually ended here rather than being dumped mid-flight.
            let (time, completed, deadlocked) = {
                let st = self.shared.state.lock();
                match &result {
                    Ok(c) => (st.now, *c, false),
                    Err(SimError::Deadlock { .. }) => (st.now, false, true),
                    Err(_) => (st.now, false, false),
                }
            };
            self.shared.tracer.record_analysis(AnalysisRecord::RunEnd {
                time,
                completed,
                deadlocked,
            });
        }
        self.terminate_all();
        result.map(|completed| {
            let st = self.shared.state.lock();
            Summary {
                end_time: st.now,
                processes_spawned: st.slots.len(),
                events_processed: self.events,
                completed,
            }
        })
    }

    /// Process one yield message; returns an error to abort the run.
    fn handle_yield(&mut self, msg: YieldMsg) -> Option<SimError> {
        let mut st = self.shared.state.lock();
        let pid = msg.pid;
        match msg.op {
            YieldOp::Hold(d) => {
                let at = st.now + d;
                st.slots[pid.index()].state = ProcState::Holding;
                st.arm_timer(pid, at);
            }
            YieldOp::Park => {
                let slot = &mut st.slots[pid.index()];
                if slot.token {
                    slot.token = false;
                    st.make_ready(pid, WakeReason::Unpark);
                } else {
                    slot.state = ProcState::Parked;
                }
            }
            YieldOp::ParkTimeout(d) => {
                let slot = &mut st.slots[pid.index()];
                if slot.token {
                    slot.token = false;
                    st.make_ready(pid, WakeReason::Unpark);
                } else {
                    slot.state = ProcState::Parked;
                    let at = st.now + d;
                    st.arm_timer(pid, at);
                }
            }
            YieldOp::Exit { panic_message } => {
                let slot = &mut st.slots[pid.index()];
                slot.state = ProcState::Finished;
                slot.resume_tx = None;
                let join = slot.join.take();
                let name = slot.name.clone();
                st.live -= 1;
                drop(st);
                if let Some(h) = join {
                    let _ = h.join();
                }
                if let Some(message) = panic_message {
                    return Some(SimError::ProcessPanicked { name, message });
                }
            }
        }
        None
    }

    /// Pop timers until a valid one is found, then advance the clock.
    /// Returns `Some(outcome)` when the run is over.
    ///
    /// Timers expiring at the same instant fire in **arm order** (their
    /// monotonic sequence numbers) by default; an installed oracle is
    /// consulted to tie-break instead, making same-time wake order an
    /// explorable scheduling decision rather than an accident of heap
    /// layout.
    fn advance_time(&mut self, limit: SimTime) -> Option<Result<bool, SimError>> {
        let mut st = self.shared.state.lock();
        // Find the earliest valid timer, discarding stale entries.
        let front = loop {
            match st.heap.peek() {
                None => {
                    return if st.live == 0 {
                        Some(Ok(true))
                    } else {
                        Some(Err(self.deadlock_error(&mut st)))
                    };
                }
                Some(Reverse(entry)) => {
                    let entry = *entry;
                    let valid = {
                        let slot = &st.slots[entry.pid.index()];
                        slot.gen == entry.gen
                            && matches!(slot.state, ProcState::Parked | ProcState::Holding)
                    };
                    if !valid {
                        st.heap.pop();
                        continue;
                    }
                    if entry.time > limit {
                        // Horizon reached with pending work.
                        st.now = limit;
                        return Some(Ok(false));
                    }
                    break entry;
                }
            }
        };
        st.heap.pop();
        let chosen = if let Some(oracle) = &self.oracle {
            // Collect every other valid timer due at the same instant so
            // the oracle can reorder the tie. Heap pops arrive in (time,
            // seq) order, so `ties` is sorted by arm order.
            let mut ties = vec![front];
            while let Some(Reverse(peek)) = st.heap.peek() {
                if peek.time != front.time {
                    break;
                }
                let entry = *peek;
                st.heap.pop();
                let slot = &st.slots[entry.pid.index()];
                if slot.gen == entry.gen
                    && matches!(slot.state, ProcState::Parked | ProcState::Holding)
                {
                    ties.push(entry);
                }
            }
            let idx = if ties.len() > 1 {
                let candidates =
                    candidates_of(&st, ties.iter().map(|e| (e.pid, WakeReason::Timer)));
                oracle
                    .lock()
                    .choose(DecisionKind::Timer, front.time, &candidates)
                    .min(ties.len() - 1)
            } else {
                0
            };
            let chosen = ties.swap_remove(idx);
            for entry in ties {
                st.heap.push(Reverse(entry));
            }
            chosen
        } else {
            front
        };
        st.now = chosen.time;
        self.shared.tracer.set_now_hint(chosen.time);
        st.make_ready(chosen.pid, WakeReason::Timer);
        None
    }

    /// Build the enriched deadlock report: per-process wait causes with
    /// holder states, a wait-for cycle if one exists, and (while analysis
    /// recording is on) matching trace records for the deadlock checker.
    fn deadlock_error(&self, st: &mut State) -> SimError {
        let blocked: Vec<BlockedProcess> = st
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state != ProcState::Finished)
            .map(|(i, s)| {
                let cause = s.wait.clone();
                let holder_states = cause
                    .as_ref()
                    .map(|c| {
                        c.holders
                            .iter()
                            .map(|h| {
                                let hs = &st.slots[h.index()];
                                let state = match hs.state {
                                    ProcState::Finished => "finished",
                                    ProcState::Parked => "parked",
                                    ProcState::Holding => "holding",
                                    ProcState::Ready | ProcState::Running => "runnable",
                                };
                                format!("{} ({state})", hs.name)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                BlockedProcess {
                    pid: Pid::from_index(i),
                    name: s.name.clone(),
                    cause,
                    holder_states,
                }
            })
            .collect();
        let cycle = wait_cycle(&blocked);
        if self.shared.tracer.analysis_enabled() {
            let time = st.now;
            for b in &blocked {
                let (kind, resource, holders) = match &b.cause {
                    Some(c) => (c.kind, c.resource.clone(), c.holders.clone()),
                    None => (WaitKind::Park, String::new(), Vec::new()),
                };
                self.shared
                    .tracer
                    .record_analysis(AnalysisRecord::DeadlockWaiter {
                        time,
                        pid: b.pid,
                        process: b.name.clone(),
                        kind,
                        resource,
                        holders,
                    });
            }
            self.shared
                .tracer
                .record_analysis(AnalysisRecord::Deadlock {
                    time,
                    cycle: cycle.clone(),
                });
        }
        SimError::Deadlock { blocked, cycle }
    }

    /// Tear down any processes still alive (horizon stops, deadlocks,
    /// panics): dropping their resume senders makes their next blocking
    /// receive unwind with the [`Terminated`] sentinel.
    fn terminate_all(&mut self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock();
            st.terminating = true;
            st.slots
                .iter_mut()
                .filter(|s| s.state != ProcState::Finished)
                .filter_map(|s| {
                    s.resume_tx = None;
                    s.state = ProcState::Finished;
                    s.join.take()
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Drain any Exit messages raced in during teardown.
        while self.yield_rx.try_recv().is_ok() {}
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        if !self.ran {
            self.terminate_all();
        }
    }
}

/// Snapshot oracle candidates for a set of wakeable processes.
fn candidates_of(st: &State, items: impl Iterator<Item = (Pid, WakeReason)>) -> Vec<Candidate> {
    items
        .map(|(pid, reason)| {
            let slot = &st.slots[pid.index()];
            Candidate {
                pid,
                reason,
                name: slot.name.clone(),
                clock: slot.clock.clone(),
            }
        })
        .collect()
}

/// Find a wait-for cycle among blocked processes, following each process's
/// `cause.holders` edges (restricted to processes that are themselves
/// blocked). Returns the cycle with its first node repeated at the end, or
/// empty when the wait graph is acyclic.
fn wait_cycle(blocked: &[BlockedProcess]) -> Vec<Pid> {
    let holders_of = |p: Pid| -> &[Pid] {
        blocked
            .iter()
            .find(|b| b.pid == p)
            .and_then(|b| b.cause.as_ref())
            .map(|c| c.holders.as_slice())
            .unwrap_or(&[])
    };
    let is_blocked = |p: Pid| blocked.iter().any(|b| b.pid == p);
    for start in blocked {
        // Bounded DFS from each blocked process; the graph is tiny.
        let mut stack = vec![(start.pid, vec![start.pid])];
        let mut visited: Vec<Pid> = Vec::new();
        while let Some((p, path)) = stack.pop() {
            for &h in holders_of(p) {
                if !is_blocked(h) {
                    continue;
                }
                if let Some(pos) = path.iter().position(|&q| q == h) {
                    let mut cycle: Vec<Pid> = path[pos..].to_vec();
                    cycle.push(h);
                    return cycle;
                }
                if !visited.contains(&h) {
                    visited.push(h);
                    let mut next = path.clone();
                    next.push(h);
                    stack.push((h, next));
                }
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes_at_zero() {
        let sim = Simulation::new();
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, SimTime::ZERO);
        assert!(s.completed);
        assert_eq!(s.processes_spawned, 0);
    }

    #[test]
    fn single_process_holds_advance_clock() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            ctx.hold(SimDuration::from_millis(7));
            assert_eq!(ctx.now(), SimTime::from_nanos(12_000_000));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 12.0);
    }

    #[test]
    fn two_processes_interleave_deterministically() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let order = Arc::new(AtomicU64::new(0));
        let mut sim = Simulation::new();
        let (o1, o2) = (order.clone(), order.clone());
        sim.spawn("a", move |ctx| {
            ctx.hold(SimDuration::from_millis(2));
            // a wakes at t=2, after b's t=1 wake.
            assert_eq!(o1.fetch_add(1, Ordering::SeqCst), 1);
        });
        sim.spawn("b", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            assert_eq!(o2.fetch_add(1, Ordering::SeqCst), 0);
        });
        sim.run().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut sim = Simulation::new();
        let kernel = sim.kernel();
        let target = sim.spawn("sleeper", |ctx| {
            let reason = ctx.park();
            assert_eq!(reason, WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 3.0);
        });
        let _ = kernel;
        sim.spawn("waker", move |ctx| {
            ctx.hold(SimDuration::from_millis(3));
            ctx.unpark(target);
        });
        sim.run().unwrap();
    }

    #[test]
    fn unpark_token_is_remembered() {
        let mut sim = Simulation::new();
        let target = sim.spawn("late-parker", |ctx| {
            ctx.hold(SimDuration::from_millis(10));
            // Unpark happened at t=1 while we were holding: token redeems now.
            assert_eq!(ctx.park(), WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 10.0);
        });
        sim.spawn("early-waker", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        sim.run().unwrap();
    }

    #[test]
    fn park_timeout_fires_timer() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            let reason = ctx.park_timeout(SimDuration::from_millis(4));
            assert_eq!(reason, WakeReason::Timer);
            assert_eq!(ctx.now().as_millis_f64(), 4.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn park_timeout_unparked_early_cancels_timer() {
        let mut sim = Simulation::new();
        let target = sim.spawn("p", |ctx| {
            let reason = ctx.park_timeout(SimDuration::from_millis(100));
            assert_eq!(reason, WakeReason::Unpark);
            assert_eq!(ctx.now().as_millis_f64(), 1.0);
            // The stale timer must not wake us again.
            ctx.hold(SimDuration::from_millis(500));
        });
        sim.spawn("w", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            ctx.unpark(target);
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 501.0);
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", |ctx| {
            ctx.park();
        });
        match sim.run() {
            Err(err @ SimError::Deadlock { .. }) => {
                assert_eq!(err.blocked_names(), vec!["stuck"]);
                let SimError::Deadlock { blocked, cycle } = &err else {
                    unreachable!()
                };
                // A bare park records no cause and forms no cycle.
                assert!(blocked[0].cause.is_none());
                assert!(cycle.is_empty());
                assert!(err.to_string().contains("no wait cause recorded"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn same_time_timers_fire_in_arm_order_by_default() {
        // Regression for timer-wheel tie-breaking: both processes hold to
        // the same instant; the one that armed its timer first must wake
        // first. This holds with and without an (FIFO-default) oracle.
        use crate::oracle::{SchedOracle, ScriptOracle};
        for with_oracle in [false, true] {
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Simulation::new();
            if with_oracle {
                sim.set_oracle(ScriptOracle::recording().into_handle());
            }
            for name in ["first", "second"] {
                let order = order.clone();
                sim.spawn(name, move |ctx| {
                    ctx.hold(SimDuration::from_millis(1));
                    order.lock().push(ctx.name());
                });
            }
            sim.run().unwrap();
            assert_eq!(
                *order.lock(),
                vec!["first".to_string(), "second".to_string()],
                "with_oracle={with_oracle}"
            );
        }
    }

    #[test]
    fn oracle_can_flip_timer_tie_break() {
        use crate::oracle::{DecisionKind, SchedOracle, ScriptOracle};
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        // Decision 0 is the t=0 run-queue pick (both spawns ready);
        // decision 1 is the t=1ms timer tie — index 1 flips it.
        let oracle = ScriptOracle::replay(vec![0, 1]);
        let log = oracle.log();
        sim.set_oracle(oracle.into_handle());
        for name in ["first", "second"] {
            let order = order.clone();
            sim.spawn(name, move |ctx| {
                ctx.hold(SimDuration::from_millis(1));
                order.lock().push(ctx.name());
            });
        }
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec!["second".to_string(), "first".to_string()]
        );
        let decisions = log.snapshot();
        assert!(decisions
            .iter()
            .any(|d| d.kind == DecisionKind::Timer && d.candidates.len() == 2));
    }

    #[test]
    fn oracle_reorders_run_queue() {
        use crate::oracle::{SchedOracle, ScriptOracle};
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        // Both spawns are ready at t=0; choosing index 1 runs "b" first.
        let oracle = ScriptOracle::replay(vec![1]);
        sim.set_oracle(oracle.into_handle());
        for name in ["a", "b"] {
            let order = order.clone();
            sim.spawn(name, move |ctx| {
                order.lock().push(ctx.name());
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bomb", |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "bomb");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new();
        sim.spawn("long", |ctx| {
            ctx.hold(SimDuration::from_secs(100));
        });
        let s = sim.run_until(SimTime::from_nanos(5_000)).unwrap();
        assert!(!s.completed);
        assert_eq!(s.end_time.as_nanos(), 5_000);
    }

    #[test]
    fn nested_spawn_runs_child() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("child", |c| {
                c.hold(SimDuration::from_millis(2));
            });
            assert_eq!(child.index(), 1);
            ctx.hold(SimDuration::from_millis(5));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.processes_spawned, 2);
        assert_eq!(s.end_time.as_millis_f64(), 5.0);
    }

    #[test]
    fn spawn_at_delays_first_run() {
        let mut sim = Simulation::new();
        sim.spawn_at(SimTime::from_nanos(7_000_000), "late", |ctx| {
            assert_eq!(ctx.now().as_millis_f64(), 7.0);
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 7.0);
    }

    #[test]
    fn yield_now_lets_peer_run_at_same_time() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let peer_ran = Arc::new(AtomicBool::new(false));
        let flag = peer_ran.clone();
        let mut sim = Simulation::new();
        sim.spawn("a", move |ctx| {
            ctx.yield_now();
            assert!(flag.load(Ordering::SeqCst));
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        let flag2 = peer_ran.clone();
        sim.spawn("b", move |_ctx| {
            flag2.store(true, Ordering::SeqCst);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dropping_unran_simulation_reaps_threads() {
        let mut sim = Simulation::new();
        sim.spawn("never-run", |ctx| {
            ctx.park();
        });
        drop(sim); // must not hang
    }
}

//! Pinned staging-buffer pool with size-class free lists.
//!
//! `cudaHostAlloc` / `cudaFreeHost` are expensive host calls, and the GVM
//! needs two pinned staging buffers per active rank per round. The pool
//! rounds requests up to a power-of-two size class and recycles buffers
//! across rounds and ranks, so steady-state traffic allocates nothing.
//! Pool operations cost no *simulated* time — acquiring a recycled buffer
//! models exactly the pointer swap a real pool performs — which keeps the
//! pool golden-safe: timings are unchanged whether a lease hits or misses.
//!
//! The pool is **bounded** by [`PoolConfig`]: free-list bytes above the
//! high-water cap are released back to the host at recycle time (so one
//! demand burst no longer pins peak memory forever), free lists are split
//! per NUMA node so a lease lands on the requester's socket, and an
//! optional lease cap provides blocking backpressure via
//! [`StagingPool::acquire_blocking`].
//!
//! Every acquire/recycle is mirrored onto the tracer's analysis stream
//! ([`AnalysisRecord::PoolAcquire`] / [`AnalysisRecord::PoolRecycle`]) so
//! `gv-analyze` can prove lease discipline and catch use-after-recycle.

use std::collections::HashMap;

use gv_cuda::HostBuffer;
use gv_sim::{AnalysisRecord, Ctx, SimDuration, Tracer};
use parking_lot::Mutex;

/// Smallest size class handed out, in bytes.
pub const MIN_CLASS: u64 = 4096;

/// Bounding policy for a [`StagingPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Cap on total free-list bytes. When a recycle pushes the resident
    /// free bytes above this, whole buffers are released (largest size
    /// class first) until back under. `None` disables shrinking and the
    /// pool holds its peak demand forever.
    pub max_free_bytes: Option<u64>,
    /// Cap on concurrently leased bytes. [`StagingPool::acquire_blocking`]
    /// blocks (in simulated time) while granting the lease would exceed
    /// it; plain [`StagingPool::acquire`] never blocks — the GVM serve
    /// loop must not deadlock against its own recycles — and only counts
    /// the overshoot in [`PoolStats::over_cap`]. `None` disables the cap.
    pub lease_cap_bytes: Option<u64>,
    /// Number of NUMA nodes the free lists are split across. A lease is
    /// recycled to the node it was acquired for, so steady-state traffic
    /// stays socket-local. `1` (the default) models a single-socket host.
    pub numa_nodes: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            // Generous default: big enough that no current sweep ever
            // shrinks mid-run, small enough to bound a pathological burst.
            max_free_bytes: Some(512 << 20),
            lease_cap_bytes: None,
            numa_nodes: 1,
        }
    }
}

impl PoolConfig {
    /// An unbounded pool (pre-bounding behavior: never shrinks).
    pub fn unbounded() -> Self {
        PoolConfig {
            max_free_bytes: None,
            lease_cap_bytes: None,
            numa_nodes: 1,
        }
    }
}

/// Aggregate pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires satisfied from a free list.
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub misses: u64,
    /// Distinct buffers ever created.
    pub buffers: u64,
    /// Total bytes backing all resident buffers (live + free). Decreases
    /// when the high-water shrink releases buffers.
    pub allocated_bytes: u64,
    /// Bytes currently leased out.
    pub in_use_bytes: u64,
    /// Peak of `in_use_bytes` over the pool's lifetime.
    pub high_water_bytes: u64,
    /// Buffers released by the high-water shrink path.
    pub released_buffers: u64,
    /// Bytes released by the high-water shrink path.
    pub released_bytes: u64,
    /// `acquire_blocking` calls that had to wait for the lease cap.
    pub backpressure_waits: u64,
    /// Total simulated nanoseconds spent waiting for the lease cap.
    pub backpressure_wait_ns: u64,
    /// Non-blocking acquires granted past the lease cap (the GVM's own
    /// acquires may overshoot rather than deadlock the serve loop).
    pub over_cap: u64,
}

impl PoolStats {
    /// Fraction of acquires served from the free lists (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PooledBuf {
    id: u64,
    buf: HostBuffer,
    /// Simulated host-address ordinal of the pinned region (see
    /// [`StagingLease::place_addr`]). Stable across recycles.
    place: u64,
}

struct Inner {
    /// Free lists keyed by (size class, functional?, NUMA node).
    /// Functional buffers carry real storage and must never be handed to a
    /// timing-only lease (and vice versa), so the flag is part of the key;
    /// the NUMA index keeps recycled buffers socket-local.
    free: HashMap<(u64, bool, usize), Vec<PooledBuf>>,
    /// Current generation per buffer id. Starts at 1 on first allocation
    /// and bumps on every recycle/retire, so a descriptor minted under an
    /// earlier lease of the same buffer is recognizably stale.
    generations: HashMap<u64, u64>,
    config: PoolConfig,
    stats: PoolStats,
    /// Next simulated host address handed to a freshly allocated buffer.
    /// Fresh allocations are laid out monotonically, so consecutive
    /// acquires that all miss receive *adjacent* pinned regions — the
    /// coalescing planner's contiguity source.
    next_place: u64,
}

/// A zero-copy handle to a window of an exported staging lease —
/// everything a client needs to address payload bytes the GVM leased to it
/// as a shared-memory segment. All-integer and `Copy`, so it rides protocol
/// messages without allocation.
///
/// Descriptors are *generation-stamped*: recycling the lease bumps the
/// buffer's generation, and [`StagingPool::validate`] rejects any
/// descriptor minted under an earlier generation. That is the entire
/// use-after-recycle defense of the zero-copy path, so it must be checked
/// on every use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingDescriptor {
    /// Pool buffer id backing the exported segment.
    pub segment: u64,
    /// Byte offset of the payload window within the segment.
    pub offset: u64,
    /// Payload window length in bytes.
    pub len: u64,
    /// Lease generation the descriptor was minted under.
    pub generation: u64,
}

/// A pool of pinned host staging buffers.
pub struct StagingPool {
    inner: Mutex<Inner>,
}

/// An exclusive lease on one pooled buffer, from [`StagingPool::acquire`]
/// until [`StagingPool::recycle`].
pub struct StagingLease {
    buf: HostBuffer,
    id: u64,
    class: u64,
    functional: bool,
    numa: usize,
    generation: u64,
    place: u64,
}

impl StagingLease {
    /// The leased pinned buffer. Its capacity is the size class, which may
    /// exceed the requested bytes — stage exact payload ranges only; slack
    /// bytes are stale from earlier leases and must never be read.
    pub fn buffer(&self) -> &HostBuffer {
        &self.buf
    }

    /// Pool-unique buffer id (correlates with `PoolAcquire` records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Size-class capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.class
    }

    /// NUMA node the lease was acquired for (0 on single-socket configs).
    pub fn numa(&self) -> usize {
        self.numa
    }

    /// Simulated host address of the pinned region. The pool lays fresh
    /// buffers out monotonically, so two leases with
    /// `a.place_addr() + a.capacity() == b.place_addr()` back *adjacent*
    /// pinned windows — the coalescing planner fuses exactly such runs
    /// into one DMA submission. The address is a model ordinal, not a
    /// real pointer; only adjacency arithmetic is meaningful.
    pub fn place_addr(&self) -> u64 {
        self.place
    }

    /// Generation this lease was granted under (see
    /// [`StagingDescriptor::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Mint a zero-copy descriptor for a window of this lease. Panics when
    /// the window overruns the lease's size-class capacity.
    pub fn descriptor(&self, offset: u64, len: u64) -> StagingDescriptor {
        assert!(
            offset + len <= self.class,
            "descriptor window {offset}+{len} overruns lease capacity {}",
            self.class
        );
        StagingDescriptor {
            segment: self.id,
            offset,
            len,
            generation: self.generation,
        }
    }
}

impl std::fmt::Debug for StagingLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagingLease")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("functional", &self.functional)
            .finish()
    }
}

fn size_class(bytes: u64) -> u64 {
    bytes.max(MIN_CLASS).next_power_of_two()
}

impl Default for StagingPool {
    fn default() -> Self {
        Self::new()
    }
}

impl StagingPool {
    /// An empty pool with the default bounding policy.
    pub fn new() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// An empty pool with an explicit bounding policy.
    pub fn with_config(config: PoolConfig) -> Self {
        StagingPool {
            inner: Mutex::new(Inner {
                free: HashMap::new(),
                generations: HashMap::new(),
                config,
                stats: PoolStats::default(),
                next_place: 0,
            }),
        }
    }

    /// Lease a pinned buffer of at least `bytes` bytes, preferring NUMA
    /// node 0. See [`acquire_on`](Self::acquire_on).
    pub fn acquire(&self, tracer: &Tracer, bytes: u64, functional: bool) -> StagingLease {
        self.acquire_on(tracer, bytes, functional, 0)
    }

    /// Lease a pinned buffer of at least `bytes` bytes from `numa`'s free
    /// lists. `functional` leases carry real (initially zeroed) storage;
    /// timing-only leases are opaque. Records a `PoolAcquire` on
    /// `tracer`'s analysis stream. Never blocks: a lease cap overshoot is
    /// only counted ([`PoolStats::over_cap`]), since the GVM serve loop
    /// both acquires and recycles and must not wait on itself.
    pub fn acquire_on(
        &self,
        tracer: &Tracer,
        bytes: u64,
        functional: bool,
        numa: usize,
    ) -> StagingLease {
        let mut inner = self.inner.lock();
        self.acquire_locked(&mut inner, tracer, bytes, functional, numa, None)
    }

    /// Like [`acquire_on`](Self::acquire_on), but with a placement hint:
    /// when `prefer_place` is `Some(addr)`, the free list is scanned for
    /// the recycled buffer whose pinned region starts at `addr` (the one
    /// adjacent to a lease the caller already holds) before falling back
    /// to LIFO. A miss on the hint is silent — the lease is still granted,
    /// just not guaranteed adjacent — so hinted acquires are always safe.
    pub fn acquire_at(
        &self,
        tracer: &Tracer,
        bytes: u64,
        functional: bool,
        numa: usize,
        prefer_place: Option<u64>,
    ) -> StagingLease {
        let mut inner = self.inner.lock();
        self.acquire_locked(&mut inner, tracer, bytes, functional, numa, prefer_place)
    }

    /// Like [`acquire_on`](Self::acquire_on), but honors the configured
    /// lease cap by blocking in **simulated** time (exponential-backoff
    /// polling on `ctx`) until the lease fits. Intended for client-side
    /// callers that are not on the pool's recycle path.
    pub fn acquire_blocking(
        &self,
        ctx: &mut Ctx,
        tracer: &Tracer,
        bytes: u64,
        functional: bool,
        numa: usize,
    ) -> StagingLease {
        let class = size_class(bytes);
        let mut backoff = SimDuration::from_micros(50);
        let max_backoff = SimDuration::from_micros(1000);
        let mut waited = false;
        loop {
            {
                let mut inner = self.inner.lock();
                let fits = match inner.config.lease_cap_bytes {
                    // A lease bigger than the whole cap must still be
                    // grantable once nothing else is out, or the caller
                    // would spin forever.
                    Some(cap) => {
                        inner.stats.in_use_bytes + class <= cap || inner.stats.in_use_bytes == 0
                    }
                    None => true,
                };
                if fits {
                    return self.acquire_locked(&mut inner, tracer, bytes, functional, numa, None);
                }
                if !waited {
                    waited = true;
                    inner.stats.backpressure_waits += 1;
                }
                inner.stats.backpressure_wait_ns += backoff.as_nanos();
            }
            ctx.hold(backoff);
            backoff = (backoff * 2).min(max_backoff);
        }
    }

    fn acquire_locked(
        &self,
        inner: &mut Inner,
        tracer: &Tracer,
        bytes: u64,
        functional: bool,
        numa: usize,
        prefer_place: Option<u64>,
    ) -> StagingLease {
        let class = size_class(bytes);
        let numa = numa % inner.config.numa_nodes.max(1);
        if let Some(cap) = inner.config.lease_cap_bytes {
            if inner.stats.in_use_bytes + class > cap && inner.stats.in_use_bytes > 0 {
                inner.stats.over_cap += 1;
            }
        }
        let recycled = inner
            .free
            .get_mut(&(class, functional, numa))
            .and_then(|list| {
                // Placement hint: prefer the free buffer whose pinned
                // region starts exactly at `prefer_place`, else LIFO.
                if let Some(addr) = prefer_place {
                    if let Some(pos) = list.iter().position(|b| b.place == addr) {
                        return Some(list.swap_remove(pos));
                    }
                }
                list.pop()
            });
        let hit = recycled.is_some();
        let pooled = recycled.unwrap_or_else(|| {
            // Tracer-global id: pools of co-resident GVMs share one trace,
            // so a per-pool counter would alias lease brackets.
            let id = tracer.alloc_pool_buf_id();
            inner.stats.buffers += 1;
            inner.stats.allocated_bytes += class;
            let place = inner.next_place;
            inner.next_place += class;
            let buf = if functional {
                HostBuffer::zeroed(class, true)
            } else {
                HostBuffer::opaque(class, true)
            };
            PooledBuf { id, buf, place }
        });
        if hit {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        inner.stats.in_use_bytes += class;
        inner.stats.high_water_bytes = inner.stats.high_water_bytes.max(inner.stats.in_use_bytes);
        let generation = *inner.generations.entry(pooled.id).or_insert(1);
        tracer.record_analysis(AnalysisRecord::PoolAcquire {
            time: tracer.now_hint(),
            buf: pooled.id,
            bytes: class,
            hit,
        });
        StagingLease {
            buf: pooled.buf.clone(),
            id: pooled.id,
            class,
            functional,
            numa,
            generation,
            place: pooled.place,
        }
    }

    /// Return a lease to its free list. Records a `PoolRecycle`. The
    /// caller must not recycle while an async copy into or out of the
    /// buffer is still in flight (gv-analyze's staging checker enforces
    /// this over traces). When the recycle pushes resident free bytes over
    /// [`PoolConfig::max_free_bytes`], whole buffers are released —
    /// largest size class first — until back under the cap.
    pub fn recycle(&self, tracer: &Tracer, lease: StagingLease) {
        let mut inner = self.inner.lock();
        inner.stats.in_use_bytes -= lease.class;
        // The recycle invalidates every descriptor minted under this
        // lease: the next acquire of the same buffer sees a new generation.
        *inner.generations.entry(lease.id).or_insert(1) += 1;
        tracer.record_analysis(AnalysisRecord::PoolRecycle {
            time: tracer.now_hint(),
            buf: lease.id,
        });
        inner
            .free
            .entry((lease.class, lease.functional, lease.numa))
            .or_default()
            .push(PooledBuf {
                id: lease.id,
                buf: lease.buf,
                place: lease.place,
            });
        if let Some(cap) = inner.config.max_free_bytes {
            Self::shrink_to(&mut inner, cap);
        }
    }

    /// Retire a lease without returning its buffer to the free lists: the
    /// generation still bumps (outstanding descriptors go stale) and a
    /// `PoolRecycle` retirement marker is recorded, but the buffer is
    /// dropped — used when an in-flight copy may still reference it, so it
    /// must never be handed out again.
    pub fn retire(&self, tracer: &Tracer, lease: StagingLease) {
        let mut inner = self.inner.lock();
        inner.stats.in_use_bytes -= lease.class;
        inner.stats.allocated_bytes -= lease.class;
        inner.stats.released_buffers += 1;
        inner.stats.released_bytes += lease.class;
        *inner.generations.entry(lease.id).or_insert(1) += 1;
        tracer.record_analysis(AnalysisRecord::PoolRecycle {
            time: tracer.now_hint(),
            buf: lease.id,
        });
    }

    /// Current generation of buffer `buf`, or `None` for an id this pool
    /// never handed out.
    pub fn generation_of(&self, buf: u64) -> Option<u64> {
        self.inner.lock().generations.get(&buf).copied()
    }

    /// Is `desc` current — minted under the buffer's present generation?
    /// A descriptor from a recycled (or retired) lease always fails here;
    /// so does one naming a buffer this pool never granted.
    pub fn validate(&self, desc: &StagingDescriptor) -> bool {
        self.generation_of(desc.segment) == Some(desc.generation)
    }

    /// Drop free buffers (largest class first) until resident free bytes
    /// are at most `cap`. Zero simulated time: releasing pinned memory is
    /// a host-side operation the model does not charge.
    fn shrink_to(inner: &mut Inner, cap: u64) {
        while inner.stats.allocated_bytes - inner.stats.in_use_bytes > cap {
            let victim_key = inner
                .free
                .iter()
                .filter(|(_, list)| !list.is_empty())
                .map(|(key, _)| *key)
                .max_by_key(|&(class, _, _)| class);
            let Some(key) = victim_key else { break };
            if let Some(list) = inner.free.get_mut(&key) {
                if list.pop().is_some() {
                    inner.stats.allocated_bytes -= key.0;
                    inner.stats.released_buffers += 1;
                    inner.stats.released_bytes += key.0;
                }
                if list.is_empty() {
                    inner.free.remove(&key);
                }
            }
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }
}

/// Adapter exporting a staging lease's pinned buffer as the storage behind
/// a shared-memory segment ([`gv_ipc::ShmBacking`]). Client writes to the
/// segment land directly in the lease region the GVM issues H2D copies
/// from — the zero-copy transport's segment == staging lease identity.
pub struct LeaseBacking(HostBuffer);

impl LeaseBacking {
    /// Back a segment with `lease`'s buffer. The backing holds a shared
    /// handle to the storage, so it stays valid for the lifetime of the
    /// segment even after the lease object moves.
    pub fn new(lease: &StagingLease) -> Self {
        LeaseBacking(lease.buffer().clone())
    }
}

impl gv_ipc::ShmBacking for LeaseBacking {
    fn len(&self) -> u64 {
        self.0.len()
    }
    fn is_functional(&self) -> bool {
        self.0.is_functional()
    }
    fn store(&self, offset: u64, data: &[u8]) {
        self.0.fill_at(offset, data);
    }
    fn load(&self, offset: u64, out: &mut [u8]) {
        self.0.read_into(offset, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        Tracer::new()
    }

    #[test]
    fn miss_then_hit_reuses_buffer() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 5000, false);
        let id = a.id();
        assert_eq!(a.capacity(), 8192, "5000 rounds up to the 8 KiB class");
        pool.recycle(&t, a);
        let b = pool.acquire(&t, 6000, false);
        assert_eq!(b.id(), id, "same class must recycle the same buffer");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.buffers), (1, 1, 1));
        assert_eq!(s.allocated_bytes, 8192);
    }

    #[test]
    fn classes_and_functional_flag_separate_lists() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        pool.recycle(&t, a);
        // Different class: no hit.
        let b = pool.acquire(&t, 8192, false);
        // Same class but functional: no hit either.
        let c = pool.acquire(&t, 4096, true);
        assert!(c.buffer().is_functional());
        assert!(!b.buffer().is_functional());
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    fn high_water_tracks_peak_in_use() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, MIN_CLASS, false);
        let b = pool.acquire(&t, MIN_CLASS, false);
        assert_eq!(pool.stats().high_water_bytes, 2 * MIN_CLASS);
        pool.recycle(&t, a);
        pool.recycle(&t, b);
        let s = pool.stats();
        assert_eq!(s.in_use_bytes, 0);
        assert_eq!(s.high_water_bytes, 2 * MIN_CLASS);
        assert!((s.hit_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_requests_share_the_min_class() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 1, false);
        assert_eq!(a.capacity(), MIN_CLASS);
        pool.recycle(&t, a);
        let b = pool.acquire(&t, 100, false);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(b.capacity(), MIN_CLASS);
    }

    #[test]
    fn burst_shrinks_back_under_high_water_cap() {
        // Regression: the pool used to hold its peak demand forever. A
        // burst of 8 × 1 MiB leases against a 2 MiB free-byte cap must
        // release buffers on recycle until resident free bytes fit.
        let t = tracer();
        let pool = StagingPool::with_config(PoolConfig {
            max_free_bytes: Some(2 << 20),
            ..PoolConfig::default()
        });
        let leases: Vec<_> = (0..8).map(|_| pool.acquire(&t, 1 << 20, false)).collect();
        assert_eq!(pool.stats().allocated_bytes, 8 << 20);
        for l in leases {
            pool.recycle(&t, l);
        }
        let s = pool.stats();
        assert_eq!(s.in_use_bytes, 0);
        assert_eq!(
            s.allocated_bytes,
            2 << 20,
            "resident bytes must drop to the cap after the burst"
        );
        assert_eq!(s.released_buffers, 6);
        assert_eq!(s.released_bytes, 6 << 20);
        assert_eq!(s.high_water_bytes, 8 << 20, "peak demand still recorded");
        // The survivors still recycle as hits.
        let a = pool.acquire(&t, 1 << 20, false);
        assert_eq!(pool.stats().hits, 1);
        pool.recycle(&t, a);
    }

    #[test]
    fn shrink_releases_largest_classes_first() {
        let t = tracer();
        let pool = StagingPool::with_config(PoolConfig {
            max_free_bytes: Some(MIN_CLASS),
            ..PoolConfig::default()
        });
        let small = pool.acquire(&t, MIN_CLASS, false);
        let big = pool.acquire(&t, 1 << 20, false);
        pool.recycle(&t, small);
        // Still under cap: exactly MIN_CLASS free.
        assert_eq!(pool.stats().released_buffers, 0);
        pool.recycle(&t, big);
        // Over cap: the 1 MiB class goes first, the small buffer survives.
        let s = pool.stats();
        assert_eq!(s.released_bytes, 1 << 20);
        assert_eq!(s.allocated_bytes, MIN_CLASS);
        assert_eq!(pool.acquire(&t, MIN_CLASS, false).capacity(), MIN_CLASS);
        assert_eq!(pool.stats().hits, 1, "small survivor recycles as a hit");
    }

    #[test]
    fn unbounded_config_never_shrinks() {
        let t = tracer();
        let pool = StagingPool::with_config(PoolConfig::unbounded());
        let leases: Vec<_> = (0..4).map(|_| pool.acquire(&t, 1 << 20, false)).collect();
        for l in leases {
            pool.recycle(&t, l);
        }
        let s = pool.stats();
        assert_eq!(s.allocated_bytes, 4 << 20);
        assert_eq!(s.released_buffers, 0);
    }

    #[test]
    fn numa_nodes_keep_free_lists_separate() {
        let t = tracer();
        let pool = StagingPool::with_config(PoolConfig {
            numa_nodes: 2,
            ..PoolConfig::default()
        });
        let a = pool.acquire_on(&t, MIN_CLASS, false, 0);
        assert_eq!(a.numa(), 0);
        pool.recycle(&t, a);
        // Other socket: must miss even though the class matches.
        let b = pool.acquire_on(&t, MIN_CLASS, false, 1);
        assert_eq!(b.numa(), 1);
        assert_eq!(pool.stats().misses, 2);
        // Same socket: hit.
        let c = pool.acquire_on(&t, MIN_CLASS, false, 0);
        assert_eq!(pool.stats().hits, 1);
        // Out-of-range indices wrap onto configured nodes.
        let d = pool.acquire_on(&t, MIN_CLASS, false, 7);
        assert_eq!(d.numa(), 1);
        pool.recycle(&t, b);
        pool.recycle(&t, c);
        pool.recycle(&t, d);
    }

    #[test]
    fn non_blocking_acquire_counts_cap_overshoot() {
        let t = tracer();
        let pool = StagingPool::with_config(PoolConfig {
            lease_cap_bytes: Some(MIN_CLASS),
            ..PoolConfig::default()
        });
        let a = pool.acquire(&t, MIN_CLASS, false);
        let b = pool.acquire(&t, MIN_CLASS, false); // over cap, still granted
        let s = pool.stats();
        assert_eq!(s.over_cap, 1);
        assert_eq!(s.in_use_bytes, 2 * MIN_CLASS);
        pool.recycle(&t, a);
        pool.recycle(&t, b);
    }

    #[test]
    fn blocking_acquire_waits_for_the_lease_cap() {
        use gv_sim::Simulation;
        use std::sync::Arc;

        let t = tracer();
        let pool = Arc::new(StagingPool::with_config(PoolConfig {
            lease_cap_bytes: Some(MIN_CLASS),
            ..PoolConfig::default()
        }));
        let first = pool.acquire(&t, MIN_CLASS, false);
        let mut sim = Simulation::new();
        {
            let pool = Arc::clone(&pool);
            let t = t.clone();
            sim.spawn("holder", move |ctx| {
                // Release the only cap slot 1 ms into simulated time.
                ctx.hold(SimDuration::from_micros(1000));
                pool.recycle(&t, first);
            });
        }
        {
            let pool = Arc::clone(&pool);
            let t = t.clone();
            sim.spawn("waiter", move |ctx| {
                let lease = pool.acquire_blocking(ctx, &t, MIN_CLASS, false, 0);
                assert!(
                    ctx.now().as_nanos() >= 1_000_000,
                    "lease granted before the cap slot freed"
                );
                pool.recycle(&t, lease);
            });
        }
        sim.run().unwrap();
        let s = pool.stats();
        assert_eq!(s.backpressure_waits, 1);
        assert!(s.backpressure_wait_ns >= 1_000_000 - 50_000);
        assert_eq!(s.in_use_bytes, 0);
    }

    #[test]
    fn blocking_acquire_grants_oversized_lease_when_pool_idle() {
        use gv_sim::Simulation;
        use std::sync::Arc;

        // A lease larger than the whole cap must still be granted once
        // nothing else is leased, or the caller would spin forever.
        let t = tracer();
        let pool = Arc::new(StagingPool::with_config(PoolConfig {
            lease_cap_bytes: Some(MIN_CLASS),
            ..PoolConfig::default()
        }));
        let mut sim = Simulation::new();
        {
            let pool = Arc::clone(&pool);
            let t = t.clone();
            sim.spawn("p", move |ctx| {
                let lease = pool.acquire_blocking(ctx, &t, 1 << 20, false, 0);
                assert_eq!(lease.capacity(), 1 << 20);
                pool.recycle(&t, lease);
            });
        }
        sim.run().unwrap();
        assert_eq!(pool.stats().backpressure_waits, 0);
    }

    #[test]
    fn recycle_bumps_generation_and_stales_descriptors() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        assert_eq!(a.generation(), 1);
        let desc = a.descriptor(0, 100);
        assert_eq!(desc.segment, a.id());
        assert!(pool.validate(&desc));
        pool.recycle(&t, a);
        // The recycle alone stales the descriptor, before any re-acquire.
        assert!(!pool.validate(&desc));
        let b = pool.acquire(&t, 4096, false);
        assert_eq!(b.id(), desc.segment, "same buffer recycled");
        assert_eq!(b.generation(), 2);
        assert!(pool.validate(&b.descriptor(0, 100)));
        assert!(!pool.validate(&desc), "old generation stays stale");
        pool.recycle(&t, b);
    }

    #[test]
    fn retire_stales_descriptors_without_reuse() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        let id = a.id();
        let desc = a.descriptor(0, 4096);
        pool.retire(&t, a);
        assert!(!pool.validate(&desc));
        let s = pool.stats();
        assert_eq!(s.in_use_bytes, 0);
        assert_eq!(s.allocated_bytes, 0);
        assert_eq!(s.released_buffers, 1);
        // The buffer never re-enters a free list.
        let b = pool.acquire(&t, 4096, false);
        assert_ne!(b.id(), id);
        assert_eq!(pool.stats().hits, 0);
        pool.recycle(&t, b);
    }

    #[test]
    fn validate_rejects_foreign_buffers() {
        let pool = StagingPool::new();
        assert_eq!(pool.generation_of(77), None);
        assert!(!pool.validate(&StagingDescriptor {
            segment: 77,
            offset: 0,
            len: 16,
            generation: 1,
        }));
    }

    #[test]
    #[should_panic(expected = "overruns lease capacity")]
    fn descriptor_window_must_fit_capacity() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        let _ = a.descriptor(4000, 200);
    }

    #[test]
    fn lease_backing_exports_shared_storage() {
        use gv_ipc::ShmBacking;
        let t = tracer();
        let pool = StagingPool::new();
        let lease = pool.acquire(&t, 4096, true);
        let backing = LeaseBacking::new(&lease);
        assert_eq!(backing.len(), lease.capacity());
        assert!(backing.is_functional());
        backing.store(8, &[1, 2, 3]);
        // The store is visible through the lease buffer itself.
        assert_eq!(lease.buffer().read_range(8, 3).unwrap(), vec![1, 2, 3]);
        let mut out = [0u8; 3];
        backing.load(8, &mut out);
        assert_eq!(out, [1, 2, 3]);
        // Timing-only leases export as non-functional backings.
        let opaque = pool.acquire(&t, 4096, false);
        assert!(!LeaseBacking::new(&opaque).is_functional());
        pool.recycle(&t, lease);
        pool.recycle(&t, opaque);
    }

    #[test]
    fn fresh_allocations_are_laid_out_adjacent() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, MIN_CLASS, false);
        let b = pool.acquire(&t, MIN_CLASS, false);
        let c = pool.acquire(&t, 1 << 20, false);
        assert_eq!(a.place_addr() + a.capacity(), b.place_addr());
        assert_eq!(b.place_addr() + b.capacity(), c.place_addr());
        pool.recycle(&t, a);
        pool.recycle(&t, b);
        pool.recycle(&t, c);
    }

    #[test]
    fn place_addr_is_stable_across_recycles() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, MIN_CLASS, false);
        let (id, place) = (a.id(), a.place_addr());
        pool.recycle(&t, a);
        let b = pool.acquire(&t, MIN_CLASS, false);
        assert_eq!(b.id(), id);
        assert_eq!(b.place_addr(), place, "recycle must not move the region");
        pool.recycle(&t, b);
    }

    #[test]
    fn hinted_acquire_prefers_the_adjacent_buffer() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, MIN_CLASS, false);
        let b = pool.acquire(&t, MIN_CLASS, false);
        let (place_a, place_b) = (a.place_addr(), b.place_addr());
        // Recycle in an order that leaves `b` on top of the LIFO list,
        // then ask for `a`'s address: the hint must beat LIFO.
        pool.recycle(&t, a);
        pool.recycle(&t, b);
        let hinted = pool.acquire_at(&t, MIN_CLASS, false, 0, Some(place_a));
        assert_eq!(hinted.place_addr(), place_a);
        // A hint naming an address not on the free list falls back to
        // LIFO and still grants a lease.
        let fallback = pool.acquire_at(&t, MIN_CLASS, false, 0, Some(999_999_999));
        assert_eq!(fallback.place_addr(), place_b);
        assert_eq!(pool.stats().misses, 2, "both hinted acquires were hits");
        pool.recycle(&t, hinted);
        pool.recycle(&t, fallback);
    }

    #[test]
    fn acquires_are_mirrored_to_analysis_records() {
        let t = Tracer::new();
        t.set_analysis(true);
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        pool.recycle(&t, a);
        pool.acquire(&t, 4096, false);
        let recs = t.analysis_snapshot();
        let acquires = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolAcquire { .. }))
            .count();
        let hits = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolAcquire { hit: true, .. }))
            .count();
        let recycles = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolRecycle { .. }))
            .count();
        assert_eq!((acquires, hits, recycles), (2, 1, 1));
    }
}

//! Pinned staging-buffer pool with size-class free lists.
//!
//! `cudaHostAlloc` / `cudaFreeHost` are expensive host calls, and the GVM
//! needs two pinned staging buffers per active rank per round. The pool
//! rounds requests up to a power-of-two size class and recycles buffers
//! across rounds and ranks, so steady-state traffic allocates nothing.
//! Pool operations cost no *simulated* time — acquiring a recycled buffer
//! models exactly the pointer swap a real pool performs — which keeps the
//! pool golden-safe: timings are unchanged whether a lease hits or misses.
//!
//! Every acquire/recycle is mirrored onto the tracer's analysis stream
//! ([`AnalysisRecord::PoolAcquire`] / [`AnalysisRecord::PoolRecycle`]) so
//! `gv-analyze` can prove lease discipline and catch use-after-recycle.

use std::collections::HashMap;

use gv_cuda::HostBuffer;
use gv_sim::{AnalysisRecord, Tracer};
use parking_lot::Mutex;

/// Smallest size class handed out, in bytes.
pub const MIN_CLASS: u64 = 4096;

/// Aggregate pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires satisfied from a free list.
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub misses: u64,
    /// Distinct buffers ever created.
    pub buffers: u64,
    /// Total bytes backing all created buffers (live + free).
    pub allocated_bytes: u64,
    /// Bytes currently leased out.
    pub in_use_bytes: u64,
    /// Peak of `in_use_bytes` over the pool's lifetime.
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// Fraction of acquires served from the free lists (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PooledBuf {
    id: u64,
    buf: HostBuffer,
}

struct Inner {
    /// Free lists keyed by (size class, functional?). Functional buffers
    /// carry real storage and must never be handed to a timing-only lease
    /// (and vice versa), so the flag is part of the key.
    free: HashMap<(u64, bool), Vec<PooledBuf>>,
    next_id: u64,
    stats: PoolStats,
}

/// A pool of pinned host staging buffers.
pub struct StagingPool {
    inner: Mutex<Inner>,
}

/// An exclusive lease on one pooled buffer, from [`StagingPool::acquire`]
/// until [`StagingPool::recycle`].
pub struct StagingLease {
    buf: HostBuffer,
    id: u64,
    class: u64,
    functional: bool,
}

impl StagingLease {
    /// The leased pinned buffer. Its capacity is the size class, which may
    /// exceed the requested bytes — stage exact payload ranges only; slack
    /// bytes are stale from earlier leases and must never be read.
    pub fn buffer(&self) -> &HostBuffer {
        &self.buf
    }

    /// Pool-unique buffer id (correlates with `PoolAcquire` records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Size-class capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.class
    }
}

impl std::fmt::Debug for StagingLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagingLease")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("functional", &self.functional)
            .finish()
    }
}

fn size_class(bytes: u64) -> u64 {
    bytes.max(MIN_CLASS).next_power_of_two()
}

impl Default for StagingPool {
    fn default() -> Self {
        Self::new()
    }
}

impl StagingPool {
    /// An empty pool.
    pub fn new() -> Self {
        StagingPool {
            inner: Mutex::new(Inner {
                free: HashMap::new(),
                next_id: 1,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Lease a pinned buffer of at least `bytes` bytes. `functional`
    /// leases carry real (initially zeroed) storage; timing-only leases
    /// are opaque. Records a `PoolAcquire` on `tracer`'s analysis stream.
    pub fn acquire(&self, tracer: &Tracer, bytes: u64, functional: bool) -> StagingLease {
        let class = size_class(bytes);
        let mut inner = self.inner.lock();
        let recycled = inner
            .free
            .get_mut(&(class, functional))
            .and_then(|list| list.pop());
        let hit = recycled.is_some();
        let pooled = recycled.unwrap_or_else(|| {
            let id = inner.next_id;
            inner.next_id += 1;
            inner.stats.buffers += 1;
            inner.stats.allocated_bytes += class;
            let buf = if functional {
                HostBuffer::zeroed(class, true)
            } else {
                HostBuffer::opaque(class, true)
            };
            PooledBuf { id, buf }
        });
        if hit {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        inner.stats.in_use_bytes += class;
        inner.stats.high_water_bytes = inner.stats.high_water_bytes.max(inner.stats.in_use_bytes);
        tracer.record_analysis(AnalysisRecord::PoolAcquire {
            time: tracer.now_hint(),
            buf: pooled.id,
            bytes: class,
            hit,
        });
        StagingLease {
            buf: pooled.buf.clone(),
            id: pooled.id,
            class,
            functional,
        }
    }

    /// Return a lease to its free list. Records a `PoolRecycle`. The
    /// caller must not recycle while an async copy into or out of the
    /// buffer is still in flight (gv-analyze's staging checker enforces
    /// this over traces).
    pub fn recycle(&self, tracer: &Tracer, lease: StagingLease) {
        let mut inner = self.inner.lock();
        inner.stats.in_use_bytes -= lease.class;
        tracer.record_analysis(AnalysisRecord::PoolRecycle {
            time: tracer.now_hint(),
            buf: lease.id,
        });
        inner
            .free
            .entry((lease.class, lease.functional))
            .or_default()
            .push(PooledBuf {
                id: lease.id,
                buf: lease.buf,
            });
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        Tracer::new()
    }

    #[test]
    fn miss_then_hit_reuses_buffer() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 5000, false);
        let id = a.id();
        assert_eq!(a.capacity(), 8192, "5000 rounds up to the 8 KiB class");
        pool.recycle(&t, a);
        let b = pool.acquire(&t, 6000, false);
        assert_eq!(b.id(), id, "same class must recycle the same buffer");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.buffers), (1, 1, 1));
        assert_eq!(s.allocated_bytes, 8192);
    }

    #[test]
    fn classes_and_functional_flag_separate_lists() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        pool.recycle(&t, a);
        // Different class: no hit.
        let b = pool.acquire(&t, 8192, false);
        // Same class but functional: no hit either.
        let c = pool.acquire(&t, 4096, true);
        assert!(c.buffer().is_functional());
        assert!(!b.buffer().is_functional());
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    fn high_water_tracks_peak_in_use() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, MIN_CLASS, false);
        let b = pool.acquire(&t, MIN_CLASS, false);
        assert_eq!(pool.stats().high_water_bytes, 2 * MIN_CLASS);
        pool.recycle(&t, a);
        pool.recycle(&t, b);
        let s = pool.stats();
        assert_eq!(s.in_use_bytes, 0);
        assert_eq!(s.high_water_bytes, 2 * MIN_CLASS);
        assert!((s.hit_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_requests_share_the_min_class() {
        let t = tracer();
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 1, false);
        assert_eq!(a.capacity(), MIN_CLASS);
        pool.recycle(&t, a);
        let b = pool.acquire(&t, 100, false);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(b.capacity(), MIN_CLASS);
    }

    #[test]
    fn acquires_are_mirrored_to_analysis_records() {
        let t = Tracer::new();
        t.set_analysis(true);
        let pool = StagingPool::new();
        let a = pool.acquire(&t, 4096, false);
        pool.recycle(&t, a);
        pool.acquire(&t, 4096, false);
        let recs = t.analysis_snapshot();
        let acquires = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolAcquire { .. }))
            .count();
        let hits = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolAcquire { hit: true, .. }))
            .count();
        let recycles = recs
            .iter()
            .filter(|r| matches!(r, AnalysisRecord::PoolRecycle { .. }))
            .count();
        assert_eq!((acquires, hits, recycles), (2, 1, 1));
    }
}

//! Model-driven adaptive chunk sizing.
//!
//! The fixed [`PipelineConfig::chunks`] knob forces one chunk count on
//! every transfer, but the optimal split depends on the payload: the
//! pipeline win grows with `min(t_stage, t_xfer)` while every extra chunk
//! pays a fixed submit/latency overhead. [`AdaptiveChooser`] evaluates the
//! `pipelined_staging` model term from `gv-model` — extended with that
//! per-chunk overhead — to pick `k` per transfer:
//!
//! * `t_xfer` is seeded from the device model's copy-engine rate (known at
//!   GVM boot and invariant over a run);
//! * `t_stage` starts from the node's shm memcpy rate and is refined by an
//!   online EWMA of *measured* staging latency, fed back by the GVM after
//!   every staged payload;
//! * `overhead` is the fixed per-chunk cost (shm latency + copy submit).
//!
//! Small payloads (below the config threshold) always get `k = 1`; large
//! ones approach `k* = sqrt(min/overhead)`, clamped to the configured cap.
//! The chooser is deterministic given the same observation sequence, so
//! simulated runs stay reproducible.

use std::cell::Cell;

use gv_model::optimal_chunks;

use crate::config::PipelineConfig;

/// EWMA smoothing factor for staging-rate observations: new measurements
/// get a quarter weight, so one outlier round cannot swing the plan.
const ALPHA: f64 = 0.25;

/// Online chunk-count chooser (see the module docs).
///
/// Interior-mutable so the GVM can feed observations and consult the
/// chooser through a shared reference; not `Sync` — each GVM serve loop
/// owns its own chooser.
#[derive(Debug, Clone)]
pub struct AdaptiveChooser {
    /// EWMA of measured shm→pinned staging cost, ns per byte.
    stage_ns_per_byte: Cell<f64>,
    /// Modeled pinned→device copy cost, ns per byte (fixed per device).
    xfer_ns_per_byte: f64,
    /// Fixed per-chunk overhead in ns (latency + submit cost).
    overhead_ns: f64,
    /// Staging observations folded into the EWMA so far.
    observations: Cell<u64>,
}

impl AdaptiveChooser {
    /// A chooser seeded from modeled rates. `stage_seed` and `xfer` are in
    /// nanoseconds per byte; `overhead` is the fixed nanosecond cost every
    /// additional chunk pays.
    pub fn new(stage_seed_ns_per_byte: f64, xfer_ns_per_byte: f64, overhead_ns: f64) -> Self {
        assert!(stage_seed_ns_per_byte >= 0.0 && xfer_ns_per_byte >= 0.0);
        AdaptiveChooser {
            stage_ns_per_byte: Cell::new(stage_seed_ns_per_byte),
            xfer_ns_per_byte,
            overhead_ns,
            observations: Cell::new(0),
        }
    }

    /// Fold one measured staging latency (`ns` simulated nanoseconds for
    /// `bytes` payload bytes) into the EWMA. Zero-byte payloads carry no
    /// rate information and are ignored.
    pub fn observe_stage(&self, bytes: u64, ns: u64) {
        if bytes == 0 {
            return;
        }
        let rate = ns as f64 / bytes as f64;
        let prev = self.stage_ns_per_byte.get();
        self.stage_ns_per_byte.set(prev + ALPHA * (rate - prev));
        self.observations.set(self.observations.get() + 1);
    }

    /// The chunk count for a `payload`-byte transfer under `cfg`.
    ///
    /// Sub-threshold payloads (and disabled configs) always move as one
    /// span; fixed configs defer to [`PipelineConfig::fixed_k`]; adaptive
    /// configs evaluate the model with the current EWMA rates, capped by
    /// `cfg.chunks` and the payload size.
    pub fn choose(&self, payload: u64, cfg: &PipelineConfig) -> u64 {
        if payload == 0 || !cfg.enabled() || payload < cfg.threshold {
            return 1;
        }
        if !cfg.adaptive {
            return cfg.fixed_k(payload);
        }
        let t_stage = self.stage_ns_per_byte.get() * payload as f64;
        let t_xfer = self.xfer_ns_per_byte * payload as f64;
        let cap = u32::try_from(cfg.chunks).unwrap_or(u32::MAX).max(1);
        u64::from(optimal_chunks(t_stage, t_xfer, self.overhead_ns, cap)).min(payload)
    }

    /// Current EWMA staging rate, ns per byte.
    pub fn stage_rate(&self) -> f64 {
        self.stage_ns_per_byte.get()
    }

    /// Number of staging observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host-memory staging/H2D rates with a per-chunk cost that puts the
    /// 16 MiB sweet spot at k≈3 (the regime the ISSUE targets).
    fn chooser() -> AdaptiveChooser {
        // ~12.8 GB/s staging, ~8 GB/s H2D, 150 µs per-chunk overhead.
        AdaptiveChooser::new(0.078, 0.125, 150_000.0)
    }

    fn cfg(cap: usize, threshold: u64) -> PipelineConfig {
        PipelineConfig::adaptive(cap, threshold)
    }

    #[test]
    fn sub_threshold_payloads_stay_serial() {
        let c = chooser();
        let cfg = cfg(8, 1 << 20);
        assert_eq!(c.choose(0, &cfg), 1);
        assert_eq!(c.choose(4096, &cfg), 1);
        assert_eq!(c.choose((1 << 20) - 1, &cfg), 1);
    }

    #[test]
    fn sixteen_mib_picks_a_few_chunks() {
        let c = chooser();
        let k = c.choose(16 << 20, &cfg(8, 1 << 20));
        assert!(
            (2..=4).contains(&k),
            "16 MiB at memory-bus rates should pipeline at k≈2–4, got {k}"
        );
    }

    #[test]
    fn choice_is_monotone_in_payload_and_capped() {
        let c = chooser();
        let cfg = cfg(4, 64 << 10);
        let mut prev = 0;
        for mib in [1u64, 2, 4, 8, 16, 32, 64, 128, 512] {
            let k = c.choose(mib << 20, &cfg);
            assert!(k >= prev, "k dropped from {prev} to {k} at {mib} MiB");
            assert!(k <= 4, "cap exceeded at {mib} MiB: {k}");
            prev = k;
        }
        assert!(prev >= 2, "large payloads must pipeline");
    }

    #[test]
    fn fixed_config_bypasses_the_model() {
        let c = chooser();
        let fixed = PipelineConfig::chunked(3, 64);
        assert_eq!(c.choose(16 << 20, &fixed), 3);
        assert_eq!(c.choose(2, &fixed), 1, "threshold still applies");
    }

    #[test]
    fn ewma_tracks_observed_staging_rate() {
        let c = chooser();
        let before = c.choose(16 << 20, &cfg(16, 1 << 20));
        // Staging suddenly 20× slower (contended bus): the pipeline win
        // grows, so the chooser must not pick fewer chunks.
        for _ in 0..32 {
            c.observe_stage(1 << 20, (1 << 20) * 2); // 2 ns/byte
        }
        assert!(c.stage_rate() > 1.5, "EWMA converges to ~2 ns/byte");
        assert_eq!(c.observations(), 32);
        let after = c.choose(16 << 20, &cfg(16, 1 << 20));
        assert!(
            after >= before,
            "slower staging must not reduce chunking ({before} -> {after})"
        );
    }

    #[test]
    fn zero_byte_observations_are_ignored() {
        let c = chooser();
        let rate = c.stage_rate();
        c.observe_stage(0, 1_000_000);
        assert_eq!(c.stage_rate(), rate);
        assert_eq!(c.observations(), 0);
    }
}

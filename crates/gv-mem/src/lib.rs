//! # gv-mem — unified buffer-lifecycle layer
//!
//! Every payload the GVM moves between an SPMD rank and the GPU crosses
//! three buffers: the rank's shared-memory segment, a pinned host staging
//! buffer, and the device working set. This crate owns the lifecycle of
//! all three hops so the protocol code ([`gv-virt`]) only orchestrates:
//!
//! * [`StagingPool`] — pinned staging buffers on power-of-two size-class
//!   free lists, leased per round and recycled across rounds and ranks.
//!   Replaces per-rank ad-hoc `cudaHostAlloc`-style allocations.
//! * [`DeviceAllocCache`] — freed device allocations parked by
//!   `(device, bytes)` so the fault-tolerant GVM's evict/re-admit churn
//!   reuses buffers instead of malloc/free cycles.
//! * [`PipelineConfig`] — the chunked transfer planner: payloads at or
//!   above a threshold split into *k* spans issued as interleaved async
//!   copies, so staging of span *i+1* overlaps the H2D copy of span *i*
//!   and early D2H chunks overlap remaining compute at flush. Disabled by
//!   default, in which case every transfer is one span and the GVM is
//!   bit-identical to serial staging.
//! * [`AdaptiveChooser`] — model-driven chunk sizing: per-transfer `k`
//!   from the `pipelined_staging` term in `gv-model` plus an online EWMA
//!   of measured staging latency, capped by the config.
//! * [`CoalescePlan`] — the cross-rank coalescing planner: partitions a
//!   flush's admitted members into runs of adjacent staging leases
//!   ([`StagingLease::place_addr`](pool::StagingLease::place_addr)) so
//!   one fused DMA submission sweeps each run and follower sub-ops elide
//!   the per-op setup latency. Off by default ([`CoalesceConfig`]).
//! * [`stage_span`] / [`record_chunk`] / [`record_plan`] — the single
//!   span-wise data mover both protocol directions share, and the
//!   analysis-record emitters that let `gv-analyze` prove chunk tiling
//!   (including under adaptive plans) and pool-lease discipline.
//!
//! [`gv-virt`]: ../gv_virt/index.html

#![warn(missing_docs)]

pub mod adaptive;
pub mod coalesce;
pub mod config;
pub mod devcache;
pub mod pool;
pub mod stage;

pub use adaptive::AdaptiveChooser;
pub use coalesce::{CoalesceMember, CoalescePlan};
pub use config::{CoalesceConfig, MemConfig, PipelineConfig, Span};
pub use devcache::{CachedAlloc, DevCacheStats, DeviceAllocCache};
pub use pool::{
    LeaseBacking, PoolConfig, PoolStats, StagingDescriptor, StagingLease, StagingPool, MIN_CLASS,
};
pub use stage::{record_chunk, record_plan, stage_span};

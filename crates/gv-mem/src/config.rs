//! Transfer-pipelining configuration and the chunked transfer planner.

use crate::pool::PoolConfig;

/// One contiguous byte span of a payload transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the span within the payload.
    pub offset: u64,
    /// Span length in bytes (never zero in a plan).
    pub len: u64,
}

/// How (and whether) to split payload transfers into pipelined chunks.
///
/// The default is **disabled** (`chunks == 1`): every payload moves as a
/// single span and the GVM behaves bit-identically to serial staging. With
/// `chunks > 1`, payloads of at least `threshold` bytes are split into
/// `chunks` near-equal spans so the staging of span *i+1* overlaps the
/// async H2D copy of span *i* (and, at flush, early D2H chunks overlap
/// remaining compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of chunks a qualifying payload is split into. `1` disables
    /// chunking entirely. Under [`adaptive`](Self::adaptive) sizing this is
    /// the chunk *cap*: the chooser never picks more spans than this.
    pub chunks: usize,
    /// Minimum payload size (bytes) eligible for chunking. Payloads below
    /// this always move as one span. Irrelevant while `chunks == 1`.
    pub threshold: u64,
    /// Model-driven chunk sizing: instead of always splitting qualifying
    /// payloads into exactly `chunks` spans, the GVM's
    /// [`AdaptiveChooser`](crate::AdaptiveChooser) picks a per-transfer
    /// `k ∈ [1, chunks]` from the `pipelined_staging` model term and an
    /// online EWMA of measured staging latency.
    pub adaptive: bool,
    /// Steady-state iteration overlap: the client prefetches round *j+1*'s
    /// `SND` while round *j* still computes, and the GVM double-buffers the
    /// pinned input lease so next-round staging and H2D overlap current-
    /// round compute and D2H drain. Off by default (protocol timing is then
    /// bit-identical to the non-overlapped schedule).
    pub steady: bool,
    /// Ablation baseline: restrict span-wise pre-issue to the session's
    /// *first* round. Later rounds stage their whole payload serially and
    /// upload it in one monolithic H2D at flush — the pre-steady-state
    /// schedule the ROADMAP describes ("only the first iteration's H2D is
    /// pre-issued from SND; steady-state iterations still stage
    /// serially"). Kept so the steady-state sweep measures its win against
    /// exactly that schedule.
    pub first_round_only: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunks: 1,
            threshold: 16 << 20,
            adaptive: false,
            steady: false,
            first_round_only: false,
        }
    }
}

impl PipelineConfig {
    /// Chunking enabled: split payloads of at least `threshold` bytes into
    /// `chunks` spans.
    pub fn chunked(chunks: usize, threshold: u64) -> Self {
        PipelineConfig {
            chunks,
            threshold,
            ..Self::default()
        }
    }

    /// Adaptive chunking: payloads of at least `threshold` bytes split
    /// into a model-chosen `k ≤ cap` spans.
    pub fn adaptive(cap: usize, threshold: u64) -> Self {
        PipelineConfig {
            chunks: cap,
            threshold,
            adaptive: true,
            ..Self::default()
        }
    }

    /// The same configuration with steady-state iteration overlap on.
    pub fn with_steady(mut self) -> Self {
        self.steady = true;
        self
    }

    /// The same configuration restricted to first-round pre-issue (the
    /// pre-steady-state ablation baseline).
    pub fn with_first_round_only(mut self) -> Self {
        self.first_round_only = true;
        self
    }

    /// Is chunking enabled at all?
    pub fn enabled(&self) -> bool {
        self.chunks > 1
    }

    /// The fixed chunk count [`plan`](Self::plan) uses for `payload`: 1
    /// for sub-threshold, disabled, or adaptive configs (under adaptive
    /// sizing only the GVM's chooser knows `k`, so plain `plan` callers —
    /// the client-side shm mirror, the RCV drain — stay single-span), else
    /// `chunks` clamped so no span is empty.
    pub fn fixed_k(&self, payload: u64) -> u64 {
        if self.chunks <= 1 || self.adaptive || payload < self.threshold {
            1
        } else {
            (self.chunks as u64).min(payload)
        }
    }

    /// Split `payload` bytes into the spans this configuration prescribes.
    ///
    /// Spans tile `[0, payload)` exactly once, in ascending order. A
    /// payload of zero yields no spans; a payload below `threshold` (or a
    /// disabled config) yields exactly one. The chunk count is clamped so
    /// no span is empty.
    pub fn plan(&self, payload: u64) -> Vec<Span> {
        Self::plan_exact(payload, self.fixed_k(payload))
    }

    /// [`plan`](Self::plan) into a caller-owned scratch vector (cleared
    /// first). Hot-path callers reuse one scratch across requests so the
    /// planner allocates nothing after warm-up; the produced spans are
    /// identical to [`plan`](Self::plan)'s.
    pub fn plan_into(&self, payload: u64, out: &mut Vec<Span>) {
        Self::plan_exact_into(payload, self.fixed_k(payload), out);
    }

    /// Split `payload` bytes into exactly `k` near-equal spans (clamped so
    /// no span is empty): the first `payload % k` spans carry one extra
    /// byte. This is the planner's kernel; adaptive callers pick `k` first
    /// and tile with it, and the staging checker holds every planned
    /// transfer to exactly `k` emitted spans.
    pub fn plan_exact(payload: u64, k: u64) -> Vec<Span> {
        let mut spans = Vec::new();
        Self::plan_exact_into(payload, k, &mut spans);
        spans
    }

    /// [`plan_exact`](Self::plan_exact) into a caller-owned scratch vector
    /// (cleared first).
    pub fn plan_exact_into(payload: u64, k: u64, out: &mut Vec<Span>) {
        out.clear();
        if payload == 0 {
            return;
        }
        let k = k.clamp(1, payload);
        let base = payload / k;
        let rem = payload % k;
        out.reserve(k as usize);
        let mut offset = 0;
        for i in 0..k {
            let len = base + u64::from(i < rem);
            out.push(Span { offset, len });
            offset += len;
        }
    }
}

/// Cross-rank DMA coalescing and batched kernel launch in the flush path.
///
/// When a flush admits multiple ranks, the coalescing planner
/// ([`CoalescePlan`](crate::CoalescePlan)) fuses adjacent same-direction
/// staging transfers into single large DMA submissions (the follower
/// sub-ops elide the per-op DMA setup latency) and groups the co-flushed
/// ranks' kernel launches into one batched submission that charges the
/// host launch overhead once. Off by default: the uncoalesced flush path
/// is then bit-identical to the pre-coalescing schedule and serves as the
/// ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Master switch. When `false` the flush path never consults the
    /// planner and the schedule is bit-identical to the uncoalesced one.
    pub enabled: bool,
    /// Largest per-member payload (bytes) eligible for DMA fusion. Big
    /// transfers are bandwidth-bound — fusing them buys one `dma_latency`
    /// against a multi-millisecond copy — so fusion targets the small
    /// fixed-cost-dominated end. Kernel-launch batching is *not* gated by
    /// this threshold.
    pub fuse_threshold: u64,
    /// Cap on members per fused DMA submission. Bounds the blast radius
    /// of one fused op (a fault mid-batch re-exposes every member).
    pub max_group: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            enabled: false,
            fuse_threshold: 4 << 20,
            max_group: 16,
        }
    }
}

impl CoalesceConfig {
    /// Coalescing on with the default threshold and group cap.
    pub fn on() -> Self {
        CoalesceConfig {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Buffer-lifecycle configuration carried by the GVM.
///
/// The pinned staging pool and device-allocation cache are always on (they
/// cost no simulated time); the pipeline knobs and the pool's bounding
/// policy are configurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemConfig {
    /// Chunked copy/compute pipelining; disabled by default.
    pub pipeline: PipelineConfig,
    /// Staging-pool bounding: high-water shrink, lease cap, NUMA split.
    pub pool: PoolConfig,
    /// Zero-copy transport: the GVM exports each rank's pinned staging
    /// lease *as* its shared-memory segment and hands the client a
    /// generation-stamped [`StagingDescriptor`](crate::StagingDescriptor)
    /// at `REQ`/ACK. Client writes land directly in the lease, `SND`
    /// carries only the descriptor, H2D issues straight from the lease,
    /// and flush ACKs batch to one mq latency charge per flush. Off by
    /// default — the staged-copy path is then bit-identical to the
    /// pre-zero-copy schedule and serves as the ablation baseline.
    /// Incompatible with [`PipelineConfig::steady`] double-buffering (a
    /// single exported segment cannot also be a double buffer).
    pub zero_copy: bool,
    /// Cross-rank DMA coalescing and batched kernel launch at flush;
    /// disabled by default (the uncoalesced schedule is the ablation
    /// baseline).
    pub coalesce: CoalesceConfig,
}

impl MemConfig {
    /// Convenience: the zero-copy descriptor-passing transport.
    pub fn zero_copy() -> Self {
        MemConfig {
            zero_copy: true,
            ..Self::default()
        }
    }

    /// The same configuration with the zero-copy transport toggled.
    pub fn with_zero_copy(mut self, on: bool) -> Self {
        self.zero_copy = on;
        self
    }

    /// Convenience: the coalescing flush path with default fusion knobs.
    pub fn coalesced() -> Self {
        MemConfig {
            coalesce: CoalesceConfig::on(),
            ..Self::default()
        }
    }

    /// The same configuration with the coalescing flush path toggled.
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce.enabled = on;
        self
    }
    /// Convenience: a config with chunked pipelining enabled.
    pub fn pipelined(chunks: usize, threshold: u64) -> Self {
        MemConfig {
            pipeline: PipelineConfig::chunked(chunks, threshold),
            ..Self::default()
        }
    }

    /// Convenience: adaptive chunk sizing up to `cap` spans.
    pub fn adaptive(cap: usize, threshold: u64) -> Self {
        MemConfig {
            pipeline: PipelineConfig::adaptive(cap, threshold),
            ..Self::default()
        }
    }

    /// The same configuration with steady-state iteration overlap on.
    pub fn with_steady(mut self) -> Self {
        self.pipeline = self.pipeline.with_steady();
        self
    }

    /// The same configuration restricted to first-round pre-issue (the
    /// pre-steady-state ablation baseline).
    pub fn with_first_round_only(mut self) -> Self {
        self.pipeline = self.pipeline.with_first_round_only();
        self
    }

    /// The same configuration with a replaced pool policy.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(spans: &[Span], payload: u64) {
        let mut cursor = 0;
        for s in spans {
            assert_eq!(s.offset, cursor, "spans must be ascending and gapless");
            assert!(s.len > 0, "no empty spans");
            cursor += s.len;
        }
        assert_eq!(cursor, payload);
    }

    #[test]
    fn default_plans_single_span() {
        let cfg = PipelineConfig::default();
        assert!(!cfg.enabled());
        let spans = cfg.plan(64 << 20);
        assert_eq!(
            spans,
            vec![Span {
                offset: 0,
                len: 64 << 20
            }]
        );
        assert!(cfg.plan(0).is_empty());
    }

    #[test]
    fn chunked_plan_tiles_payload() {
        let cfg = PipelineConfig::chunked(4, 1 << 20);
        let payload = (16 << 20) + 5; // deliberately not divisible by 4
        let spans = cfg.plan(payload);
        assert_eq!(spans.len(), 4);
        covers(&spans, payload);
    }

    #[test]
    fn threshold_keeps_small_payloads_whole() {
        let cfg = PipelineConfig::chunked(8, 1 << 20);
        assert_eq!(cfg.plan(4096).len(), 1);
        assert_eq!(cfg.plan(1 << 20).len(), 8);
    }

    #[test]
    fn chunk_count_clamps_to_payload() {
        let cfg = PipelineConfig::chunked(8, 1);
        let spans = cfg.plan(3);
        assert_eq!(spans.len(), 3);
        covers(&spans, 3);
    }

    #[test]
    fn mem_config_builders() {
        assert!(!MemConfig::default().pipeline.enabled());
        let m = MemConfig::pipelined(4, 64);
        assert_eq!(m.pipeline.chunks, 4);
        assert_eq!(m.pipeline.threshold, 64);
        assert!(!m.pipeline.adaptive);
        assert!(!m.pipeline.steady);
        let a = MemConfig::adaptive(8, 1 << 20).with_steady();
        assert!(a.pipeline.adaptive);
        assert!(a.pipeline.steady);
        assert_eq!(a.pipeline.chunks, 8);
        let p = MemConfig::default().with_pool(PoolConfig {
            max_free_bytes: None,
            ..PoolConfig::default()
        });
        assert_eq!(p.pool.max_free_bytes, None);
        assert!(!MemConfig::default().zero_copy);
        let z = MemConfig::zero_copy();
        assert!(z.zero_copy);
        assert!(!z.pipeline.steady);
        assert!(!MemConfig::zero_copy().with_zero_copy(false).zero_copy);
    }

    #[test]
    fn coalesce_config_builders() {
        let d = CoalesceConfig::default();
        assert!(!d.enabled);
        assert_eq!(d.fuse_threshold, 4 << 20);
        assert_eq!(d.max_group, 16);
        assert!(!MemConfig::default().coalesce.enabled);
        let c = MemConfig::coalesced();
        assert!(c.coalesce.enabled);
        assert!(!c.zero_copy);
        assert!(!MemConfig::coalesced().with_coalesce(false).coalesce.enabled);
        assert!(MemConfig::zero_copy().with_coalesce(true).coalesce.enabled);
        assert!(CoalesceConfig::on().enabled);
    }

    #[test]
    fn plan_into_matches_plan_and_clears_scratch() {
        let mut scratch = vec![
            Span {
                offset: 99,
                len: 99
            };
            3
        ];
        for cfg in [
            PipelineConfig::default(),
            PipelineConfig::chunked(4, 64),
            PipelineConfig::chunked(8, 1 << 20),
        ] {
            for payload in [0u64, 1, 63, 4096, (16 << 20) + 5] {
                cfg.plan_into(payload, &mut scratch);
                assert_eq!(scratch, cfg.plan(payload));
            }
        }
    }

    #[test]
    fn plan_exact_tiles_any_k() {
        for payload in [1u64, 3, 4096, (16 << 20) + 7] {
            for k in [1u64, 2, 3, 8, 1000] {
                let spans = PipelineConfig::plan_exact(payload, k);
                assert_eq!(spans.len() as u64, k.clamp(1, payload));
                covers(&spans, payload);
            }
        }
        assert!(PipelineConfig::plan_exact(0, 4).is_empty());
    }

    #[test]
    fn fixed_k_matches_plan() {
        for cfg in [
            PipelineConfig::default(),
            PipelineConfig::chunked(4, 64),
            PipelineConfig::adaptive(8, 1 << 20),
        ] {
            for payload in [1u64, 63, 64, 4096, 1 << 20, 16 << 20] {
                assert_eq!(cfg.plan(payload).len() as u64, cfg.fixed_k(payload));
            }
        }
    }
}

//! Transfer-pipelining configuration and the chunked transfer planner.

/// One contiguous byte span of a payload transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the span within the payload.
    pub offset: u64,
    /// Span length in bytes (never zero in a plan).
    pub len: u64,
}

/// How (and whether) to split payload transfers into pipelined chunks.
///
/// The default is **disabled** (`chunks == 1`): every payload moves as a
/// single span and the GVM behaves bit-identically to serial staging. With
/// `chunks > 1`, payloads of at least `threshold` bytes are split into
/// `chunks` near-equal spans so the staging of span *i+1* overlaps the
/// async H2D copy of span *i* (and, at flush, early D2H chunks overlap
/// remaining compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of chunks a qualifying payload is split into. `1` disables
    /// chunking entirely.
    pub chunks: usize,
    /// Minimum payload size (bytes) eligible for chunking. Payloads below
    /// this always move as one span. Irrelevant while `chunks == 1`.
    pub threshold: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunks: 1,
            threshold: 16 << 20,
        }
    }
}

impl PipelineConfig {
    /// Chunking enabled: split payloads of at least `threshold` bytes into
    /// `chunks` spans.
    pub fn chunked(chunks: usize, threshold: u64) -> Self {
        PipelineConfig { chunks, threshold }
    }

    /// Is chunking enabled at all?
    pub fn enabled(&self) -> bool {
        self.chunks > 1
    }

    /// Split `payload` bytes into the spans this configuration prescribes.
    ///
    /// Spans tile `[0, payload)` exactly once, in ascending order. A
    /// payload of zero yields no spans; a payload below `threshold` (or a
    /// disabled config) yields exactly one. The chunk count is clamped so
    /// no span is empty.
    pub fn plan(&self, payload: u64) -> Vec<Span> {
        if payload == 0 {
            return Vec::new();
        }
        let k = if self.chunks <= 1 || payload < self.threshold {
            1
        } else {
            (self.chunks as u64).min(payload)
        };
        let quantum = payload.div_ceil(k);
        let mut spans = Vec::with_capacity(k as usize);
        let mut offset = 0;
        while offset < payload {
            let len = quantum.min(payload - offset);
            spans.push(Span { offset, len });
            offset += len;
        }
        spans
    }
}

/// Buffer-lifecycle configuration carried by the GVM.
///
/// The pinned staging pool and device-allocation cache are always on (they
/// cost no simulated time), so the only knob is the transfer pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemConfig {
    /// Chunked copy/compute pipelining; disabled by default.
    pub pipeline: PipelineConfig,
}

impl MemConfig {
    /// Convenience: a config with chunked pipelining enabled.
    pub fn pipelined(chunks: usize, threshold: u64) -> Self {
        MemConfig {
            pipeline: PipelineConfig::chunked(chunks, threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(spans: &[Span], payload: u64) {
        let mut cursor = 0;
        for s in spans {
            assert_eq!(s.offset, cursor, "spans must be ascending and gapless");
            assert!(s.len > 0, "no empty spans");
            cursor += s.len;
        }
        assert_eq!(cursor, payload);
    }

    #[test]
    fn default_plans_single_span() {
        let cfg = PipelineConfig::default();
        assert!(!cfg.enabled());
        let spans = cfg.plan(64 << 20);
        assert_eq!(
            spans,
            vec![Span {
                offset: 0,
                len: 64 << 20
            }]
        );
        assert!(cfg.plan(0).is_empty());
    }

    #[test]
    fn chunked_plan_tiles_payload() {
        let cfg = PipelineConfig::chunked(4, 1 << 20);
        let payload = (16 << 20) + 5; // deliberately not divisible by 4
        let spans = cfg.plan(payload);
        assert_eq!(spans.len(), 4);
        covers(&spans, payload);
    }

    #[test]
    fn threshold_keeps_small_payloads_whole() {
        let cfg = PipelineConfig::chunked(8, 1 << 20);
        assert_eq!(cfg.plan(4096).len(), 1);
        assert_eq!(cfg.plan(1 << 20).len(), 8);
    }

    #[test]
    fn chunk_count_clamps_to_payload() {
        let cfg = PipelineConfig::chunked(8, 1);
        let spans = cfg.plan(3);
        assert_eq!(spans.len(), 3);
        covers(&spans, 3);
    }

    #[test]
    fn mem_config_builders() {
        assert!(!MemConfig::default().pipeline.enabled());
        let m = MemConfig::pipelined(4, 64);
        assert_eq!(m.pipeline.chunks, 4);
        assert_eq!(m.pipeline.threshold, 64);
    }
}

//! Device-allocation cache for the fault-tolerant GVM.
//!
//! The fault-tolerant GVM allocates a rank's device working set lazily at
//! its first SND and frees it on eviction, so churny membership (evict,
//! re-admit, next job wave) turns into `cudaMalloc`/`cudaFree` churn. The
//! cache keeps freed allocations keyed by `(device, bytes)` and hands them
//! back to the next rank requesting the same footprint.
//!
//! The cache deliberately does **not** call into the device itself: the
//! GVM owns allocation (so armed-OOM faults still fire on real allocs) and
//! calls [`DeviceAllocCache::put`] / [`DeviceAllocCache::take`] around it.
//! At shutdown the GVM drains the cache and performs the real frees, so
//! the device's alloc/free balance and `used() == 0` invariants hold.

use std::collections::HashMap;

use gv_gpu::DevicePtr;
use parking_lot::Mutex;

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevCacheStats {
    /// Requests satisfied from the cache.
    pub hits: u64,
    /// Requests that fell through to a real device allocation.
    pub misses: u64,
    /// Allocations currently parked in the cache.
    pub cached: u64,
}

/// A cache of freed device allocations, keyed by `(device index, bytes)`.
#[derive(Default)]
pub struct DeviceAllocCache {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    free: HashMap<(usize, u64), Vec<DevicePtr>>,
    stats: DevCacheStats,
}

impl DeviceAllocCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cached allocation of exactly `bytes` on device `dev`, if one
    /// is parked. Counts a hit or a miss either way; on `None` the caller
    /// must allocate for real (and may later [`put`](Self::put) it back).
    pub fn take(&self, dev: usize, bytes: u64) -> Option<DevicePtr> {
        let mut inner = self.inner.lock();
        let ptr = inner.free.get_mut(&(dev, bytes)).and_then(|l| l.pop());
        if ptr.is_some() {
            inner.stats.hits += 1;
            inner.stats.cached -= 1;
        } else {
            inner.stats.misses += 1;
        }
        ptr
    }

    /// Park a no-longer-needed allocation instead of freeing it. The
    /// caller must have synchronized the owning stream first: a parked
    /// allocation can be re-issued to another rank immediately.
    pub fn put(&self, dev: usize, bytes: u64, ptr: DevicePtr) {
        let mut inner = self.inner.lock();
        inner.stats.cached += 1;
        inner.free.entry((dev, bytes)).or_default().push(ptr);
    }

    /// Empty the cache, returning every parked allocation as
    /// `(device, bytes, ptr)` so the caller can perform the real frees.
    pub fn drain(&self) -> Vec<(usize, u64, DevicePtr)> {
        let mut inner = self.inner.lock();
        inner.stats.cached = 0;
        let mut out: Vec<(usize, u64, DevicePtr)> = inner
            .free
            .drain()
            .flat_map(|((dev, bytes), list)| list.into_iter().map(move |p| (dev, bytes, p)))
            .collect();
        // Deterministic order regardless of hash-map iteration.
        out.sort_by_key(|&(dev, bytes, ptr)| (dev, bytes, ptr.allocation_id()));
        out
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> DevCacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::{DeviceConfig, GpuDevice};
    use gv_sim::Simulation;

    /// Allocate two real pointers from a device so the handles are valid.
    fn two_ptrs() -> (DevicePtr, DevicePtr) {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let d = dev.clone();
        let out = std::sync::Arc::new(Mutex::new(None));
        let slot = out.clone();
        sim.spawn("host", move |ctx| {
            let a = d.alloc(1024).unwrap();
            let b = d.alloc(2048).unwrap();
            *slot.lock() = Some((a, b));
            d.free(a).unwrap();
            d.free(b).unwrap();
            d.shutdown(ctx);
        });
        sim.run().unwrap();
        let got = out.lock().take().unwrap();
        got
    }

    #[test]
    fn take_miss_then_put_then_hit() {
        let (a, _) = two_ptrs();
        let cache = DeviceAllocCache::new();
        assert!(cache.take(0, 1024).is_none());
        cache.put(0, 1024, a);
        assert_eq!(cache.stats().cached, 1);
        assert_eq!(cache.take(0, 1024), Some(a));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.cached), (1, 1, 0));
    }

    #[test]
    fn keys_are_exact_device_and_size() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(0, 1024, a);
        cache.put(1, 2048, b);
        assert!(cache.take(0, 2048).is_none(), "size must match exactly");
        assert!(cache.take(1, 1024).is_none(), "device must match");
        assert_eq!(cache.take(1, 2048), Some(b));
    }

    #[test]
    fn drain_returns_everything_deterministically() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(0, 1024, a);
        cache.put(1, 2048, b);
        let drained = cache.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (0, 1024, a));
        assert_eq!(drained[1], (1, 2048, b));
        assert_eq!(cache.stats().cached, 0);
        assert!(cache.drain().is_empty());
    }
}

//! Device-allocation cache for the fault-tolerant GVM.
//!
//! The fault-tolerant GVM allocates a rank's device working set lazily at
//! its first SND and frees it on eviction, so churny membership (evict,
//! re-admit, next job wave) turns into `cudaMalloc`/`cudaFree` churn. The
//! cache keeps freed allocations keyed by `(device, bytes)` and hands them
//! back to the next rank requesting the same footprint.
//!
//! Each parked entry carries the `SimTime` of the release that parked it,
//! and lives in one of two states:
//!
//! * **Resident** — still backed by device memory ([`CachedAlloc::Resident`]).
//! * **Swapped** — demand-swapped into a pinned host staging lease to free
//!   VRAM for another admission ([`CachedAlloc::Swapped`]); the next
//!   [`take`](DeviceAllocCache::take) of that footprint gets the lease back
//!   so the GVM can re-allocate and restore it through the chunked planner.
//!
//! Swap-victim selection is LRU by last-release time:
//! [`DeviceAllocCache::lru_resident`] removes the resident entry idle the
//! longest, regardless of its size — the entry least likely to be
//! re-admitted soon.
//!
//! The cache deliberately does **not** call into the device itself: the
//! GVM owns allocation (so armed-OOM faults still fire on real allocs) and
//! calls [`DeviceAllocCache::put`] / [`DeviceAllocCache::take`] around it.
//! At shutdown the GVM drains the cache and performs the real frees (and
//! recycles swapped leases back to the pool), so the device's alloc/free
//! balance and `used() == 0` invariants hold.

use gv_gpu::DevicePtr;
use gv_sim::SimTime;
use parking_lot::Mutex;

use crate::pool::StagingLease;

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevCacheStats {
    /// Requests satisfied from the cache (resident or swapped).
    pub hits: u64,
    /// Requests that fell through to a real device allocation.
    pub misses: u64,
    /// Allocations currently parked in the cache, in either state.
    pub cached: u64,
    /// Parked allocations currently swapped out to host staging.
    pub swapped: u64,
}

/// The state a parked allocation comes back in from
/// [`DeviceAllocCache::take`] or [`DeviceAllocCache::drain`].
#[derive(Debug)]
pub enum CachedAlloc {
    /// Still backed by device memory; ready to hand to a rank as-is.
    Resident(DevicePtr),
    /// Swapped out to a pinned staging lease. The caller must allocate
    /// device memory, restore the lease's contents through the planner,
    /// and recycle the lease.
    Swapped(StagingLease),
}

struct Entry {
    dev: usize,
    bytes: u64,
    /// Time of the release (or swap-out) that parked this entry.
    last_release: SimTime,
    state: CachedAlloc,
}

/// A cache of freed device allocations, keyed by `(device index, bytes)`.
#[derive(Default)]
pub struct DeviceAllocCache {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    stats: DevCacheStats,
}

impl DeviceAllocCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cached allocation of exactly `bytes` on device `dev`, if one
    /// is parked. Resident entries are preferred (most recently released
    /// first); a swapped entry is returned only when no resident one fits.
    /// Counts a hit or a miss either way; on `None` the caller must
    /// allocate for real (and may later [`put`](Self::put) it back).
    pub fn take(&self, dev: usize, bytes: u64) -> Option<CachedAlloc> {
        let mut inner = self.inner.lock();
        let pick = |want_resident: bool, entries: &[Entry]| {
            entries
                .iter()
                .enumerate()
                .filter(|(_, e)| {
                    e.dev == dev
                        && e.bytes == bytes
                        && matches!(e.state, CachedAlloc::Resident(_)) == want_resident
                })
                .max_by_key(|(i, e)| (e.last_release, *i))
                .map(|(i, _)| i)
        };
        let idx = pick(true, &inner.entries).or_else(|| pick(false, &inner.entries));
        match idx {
            Some(i) => {
                let entry = inner.entries.remove(i);
                inner.stats.hits += 1;
                inner.stats.cached -= 1;
                if matches!(entry.state, CachedAlloc::Swapped(_)) {
                    inner.stats.swapped -= 1;
                }
                Some(entry.state)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Park a no-longer-needed allocation instead of freeing it, stamped
    /// with the release time `now` for LRU victim selection. The caller
    /// must have synchronized the owning stream first: a parked allocation
    /// can be re-issued to another rank immediately.
    pub fn put(&self, dev: usize, bytes: u64, ptr: DevicePtr, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.stats.cached += 1;
        inner.entries.push(Entry {
            dev,
            bytes,
            last_release: now,
            state: CachedAlloc::Resident(ptr),
        });
    }

    /// Remove and return the least-recently-released **resident** entry on
    /// `dev`, of any size — the demand-swap victim. Returns the footprint,
    /// the device pointer to copy out and free, and the park timestamp (to
    /// preserve across [`park_swapped`](Self::park_swapped)). Does not
    /// count as a hit or miss.
    pub fn lru_resident(&self, dev: usize) -> Option<(u64, DevicePtr, SimTime)> {
        let mut inner = self.inner.lock();
        let idx = inner
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dev == dev && matches!(e.state, CachedAlloc::Resident(_)))
            .min_by_key(|(i, e)| (e.last_release, *i))
            .map(|(i, _)| i)?;
        let entry = inner.entries.remove(idx);
        inner.stats.cached -= 1;
        let CachedAlloc::Resident(ptr) = entry.state else {
            unreachable!("lru_resident filtered on Resident");
        };
        Some((entry.bytes, ptr, entry.last_release))
    }

    /// Re-park an allocation whose contents were swapped out into `lease`,
    /// keeping its original `last_release` stamp so its LRU position is
    /// unchanged for future [`take`](Self::take) preference.
    pub fn park_swapped(&self, dev: usize, bytes: u64, lease: StagingLease, last_release: SimTime) {
        let mut inner = self.inner.lock();
        inner.stats.cached += 1;
        inner.stats.swapped += 1;
        inner.entries.push(Entry {
            dev,
            bytes,
            last_release,
            state: CachedAlloc::Swapped(lease),
        });
    }

    /// Empty the cache, returning every parked allocation as
    /// `(device, bytes, state)` so the caller can perform the real frees
    /// (resident) and pool recycles (swapped).
    pub fn drain(&self) -> Vec<(usize, u64, CachedAlloc)> {
        let mut inner = self.inner.lock();
        inner.stats.cached = 0;
        inner.stats.swapped = 0;
        let mut out: Vec<(usize, u64, CachedAlloc)> = inner
            .entries
            .drain(..)
            .map(|e| (e.dev, e.bytes, e.state))
            .collect();
        // Deterministic order regardless of park order: resident entries
        // (by allocation id) ahead of swapped ones (by lease id).
        out.sort_by_key(|(dev, bytes, state)| {
            let (kind, id) = match state {
                CachedAlloc::Resident(p) => (0u8, p.allocation_id()),
                CachedAlloc::Swapped(l) => (1u8, l.id()),
            };
            (*dev, *bytes, kind, id)
        });
        out
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> DevCacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::StagingPool;
    use gv_gpu::{DeviceConfig, GpuDevice};
    use gv_sim::{Simulation, Tracer};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Allocate two real pointers from a device so the handles are valid.
    fn two_ptrs() -> (DevicePtr, DevicePtr) {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
        let d = dev.clone();
        let out = std::sync::Arc::new(Mutex::new(None));
        let slot = out.clone();
        sim.spawn("host", move |ctx| {
            let a = d.alloc(1024).unwrap();
            let b = d.alloc(2048).unwrap();
            *slot.lock() = Some((a, b));
            d.free(a).unwrap();
            d.free(b).unwrap();
            d.shutdown(ctx);
        });
        sim.run().unwrap();
        let got = out.lock().take().unwrap();
        got
    }

    fn resident(c: Option<CachedAlloc>) -> DevicePtr {
        match c {
            Some(CachedAlloc::Resident(p)) => p,
            other => panic!("expected resident entry, got {other:?}"),
        }
    }

    #[test]
    fn take_miss_then_put_then_hit() {
        let (a, _) = two_ptrs();
        let cache = DeviceAllocCache::new();
        assert!(cache.take(0, 1024).is_none());
        cache.put(0, 1024, a, t(10));
        assert_eq!(cache.stats().cached, 1);
        assert_eq!(resident(cache.take(0, 1024)), a);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.cached), (1, 1, 0));
    }

    #[test]
    fn keys_are_exact_device_and_size() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(0, 1024, a, t(10));
        cache.put(1, 2048, b, t(10));
        assert!(cache.take(0, 2048).is_none(), "size must match exactly");
        assert!(cache.take(1, 1024).is_none(), "device must match");
        assert_eq!(resident(cache.take(1, 2048)), b);
    }

    #[test]
    fn drain_returns_everything_deterministically() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(0, 1024, a, t(10));
        cache.put(1, 2048, b, t(10));
        let drained = cache.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0], (0, 1024, CachedAlloc::Resident(p)) if p == a));
        assert!(matches!(drained[1], (1, 2048, CachedAlloc::Resident(p)) if p == b));
        assert_eq!(cache.stats().cached, 0);
        assert!(cache.drain().is_empty());
    }

    /// Regression: the swap victim is the entry *released longest ago*, not
    /// the first inserted. B is inserted after A but with an earlier
    /// release stamp, so B must be evicted first.
    #[test]
    fn lru_victim_is_by_release_time_not_insertion_order() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(0, 1024, a, t(10));
        cache.put(0, 2048, b, t(5));
        let (bytes, ptr, released) = cache.lru_resident(0).unwrap();
        assert_eq!(
            (bytes, ptr, released),
            (2048, b, t(5)),
            "oldest release wins"
        );
        let (bytes, ptr, _) = cache.lru_resident(0).unwrap();
        assert_eq!((bytes, ptr), (1024, a));
        assert!(cache.lru_resident(0).is_none());
        assert_eq!(cache.stats().cached, 0);
    }

    #[test]
    fn lru_victim_is_per_device() {
        let (a, b) = two_ptrs();
        let cache = DeviceAllocCache::new();
        cache.put(1, 1024, a, t(5));
        cache.put(0, 2048, b, t(10));
        let (bytes, ptr, _) = cache.lru_resident(0).unwrap();
        assert_eq!(
            (bytes, ptr),
            (2048, b),
            "device 1's older entry is not a candidate"
        );
    }

    fn lease(pool: &StagingPool, bytes: u64) -> StagingLease {
        pool.acquire(&Tracer::new(), bytes, false)
    }

    #[test]
    fn swapped_entries_round_trip_and_yield_to_resident() {
        let (a, _) = two_ptrs();
        let pool = StagingPool::new();
        let cache = DeviceAllocCache::new();
        cache.park_swapped(0, 1024, lease(&pool, 1024), t(5));
        cache.put(0, 1024, a, t(10));
        let s = cache.stats();
        assert_eq!((s.cached, s.swapped), (2, 1));
        // Resident entry preferred even though the swapped one exists.
        assert_eq!(resident(cache.take(0, 1024)), a);
        // Then the swapped one comes back as a lease.
        match cache.take(0, 1024) {
            Some(CachedAlloc::Swapped(l)) => assert!(l.capacity() >= 1024),
            other => panic!("expected swapped entry, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.cached, s.swapped), (2, 0, 0));
    }

    #[test]
    fn lru_resident_skips_swapped_entries() {
        let (a, _) = two_ptrs();
        let pool = StagingPool::new();
        let cache = DeviceAllocCache::new();
        cache.park_swapped(0, 2048, lease(&pool, 2048), t(1));
        cache.put(0, 1024, a, t(10));
        let (bytes, ptr, _) = cache.lru_resident(0).unwrap();
        assert_eq!(
            (bytes, ptr),
            (1024, a),
            "swapped entry is not a swap victim"
        );
        assert!(cache.lru_resident(0).is_none());
    }

    #[test]
    fn drain_orders_swapped_after_resident() {
        let (a, _) = two_ptrs();
        let pool = StagingPool::new();
        let cache = DeviceAllocCache::new();
        cache.park_swapped(0, 1024, lease(&pool, 1024), t(5));
        cache.put(0, 1024, a, t(10));
        let drained = cache.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0].2, CachedAlloc::Resident(_)));
        assert!(matches!(drained[1].2, CachedAlloc::Swapped(_)));
        assert_eq!(cache.stats().swapped, 0);
    }
}

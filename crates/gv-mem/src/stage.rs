//! The unified staging path: one span-wise data mover for both protocol
//! directions, plus the analysis-record emitter that makes chunked
//! transfers auditable.
//!
//! The GVM's SND handler (shm → pinned, ahead of H2D) and RCV handler
//! (pinned → shm, after D2H) used to carry two near-identical staging
//! blocks. Both now funnel through [`stage_span`], which handles the
//! functional/timing-only split in one place: functional buffers move real
//! bytes span-by-span; timing-only buffers charge the node's memcpy cost
//! for the span without touching storage.

use gv_cuda::HostBuffer;
use gv_ipc::{SharedMem, ShmError};
use gv_sim::{AnalysisRecord, Ctx, Tracer};

use crate::config::Span;

/// Move one span between a shared-memory segment and a pinned staging
/// buffer, charging shm memcpy time either way.
///
/// `h2d == true` is the input direction (shm → pinned, ahead of an H2D
/// copy); `h2d == false` is the output direction (pinned → shm, after a
/// D2H copy). Whether real bytes move is decided by the pinned buffer:
/// functional buffers transfer the span's contents, opaque buffers charge
/// timing only (the shm side is then only touched, never stored to).
pub fn stage_span(
    ctx: &mut Ctx,
    shm: &SharedMem,
    pinned: &HostBuffer,
    span: Span,
    h2d: bool,
) -> Result<(), ShmError> {
    if span.len == 0 {
        return Ok(());
    }
    if h2d {
        if pinned.is_functional() {
            let data = shm.read(ctx, span.offset, span.len)?;
            pinned.fill_at(span.offset, &data);
        } else {
            shm.touch(ctx, span.len)?;
        }
    } else {
        match pinned.read_range(span.offset, span.len) {
            Some(data) => shm.write(ctx, span.offset, &data)?,
            None => shm.touch(ctx, span.len)?,
        }
    }
    Ok(())
}

/// Emit the [`AnalysisRecord::StageChunk`] describing one staged span.
///
/// `xfer` groups every span of one payload transfer (gv-analyze proves the
/// group tiles `[0, payload)` exactly once); `buf` is the staging pool
/// buffer id backing the span (0 when unpooled); `label` is the engine
/// command label of the async copy issued for this span, or empty when no
/// copy was issued at staging time.
#[allow(clippy::too_many_arguments)]
pub fn record_chunk(
    tracer: &Tracer,
    device: u32,
    rank: usize,
    xfer: u64,
    h2d: bool,
    span: Span,
    payload: u64,
    buf: u64,
    label: impl Into<String>,
) {
    tracer.record_analysis(AnalysisRecord::StageChunk {
        time: tracer.now_hint(),
        device,
        rank,
        xfer,
        h2d,
        offset: span.offset,
        len: span.len,
        payload,
        buf,
        label: label.into(),
    });
}

/// Emit the [`AnalysisRecord::StagePlan`] committing one transfer to `k`
/// chunks before its spans are staged.
///
/// The staging checker cross-validates: the group `xfer` must then emit
/// exactly `k` [`AnalysisRecord::StageChunk`] spans tiling `payload`, and
/// `k` must not exceed `cap` — so adaptive sizing stays auditable.
pub fn record_plan(
    tracer: &Tracer,
    rank: usize,
    xfer: u64,
    payload: u64,
    k: u64,
    cap: u64,
    adaptive: bool,
) {
    tracer.record_analysis(AnalysisRecord::StagePlan {
        time: tracer.now_hint(),
        rank,
        xfer,
        payload,
        k: u32::try_from(k).unwrap_or(u32::MAX),
        cap: u32::try_from(cap).unwrap_or(u32::MAX),
        adaptive,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use gv_ipc::{NodeConfig, ShmRegistry};
    use gv_sim::Simulation;

    #[test]
    fn functional_spans_roundtrip_through_pinned() {
        let node = NodeConfig::test_tiny();
        let reg = ShmRegistry::new(&node);
        let shm = reg.create("seg", 64).unwrap();
        let mut sim = Simulation::new();
        sim.spawn("p", move |ctx| {
            let payload: Vec<u8> = (0u8..48).collect();
            shm.write(ctx, 0, &payload).unwrap();
            let pinned = HostBuffer::zeroed(64, true);
            let spans = PipelineConfig::chunked(4, 1).plan(48);
            assert_eq!(spans.len(), 4);
            for s in &spans {
                stage_span(ctx, &shm, &pinned, *s, true).unwrap();
            }
            assert_eq!(pinned.read_range(0, 48).unwrap(), payload);
            // Now drain back out through a second segment.
            let out = reg.create("out", 64).unwrap();
            for s in &spans {
                stage_span(ctx, &out, &pinned, *s, false).unwrap();
            }
            assert_eq!(out.peek(0, 48).unwrap(), payload);
        });
        sim.run().unwrap();
    }

    #[test]
    fn timing_only_spans_charge_memcpy_per_span() {
        let node = NodeConfig::test_tiny();
        let reg = ShmRegistry::new(&node);
        let shm = reg.create("seg", 1 << 20).unwrap();
        let expect = {
            // 4 spans of 256 KiB each: 4 latencies + total bandwidth term.
            let per = node.memcpy_time(256 << 10);
            per * 4
        };
        let mut sim = Simulation::new();
        sim.spawn("p", move |ctx| {
            let pinned = HostBuffer::opaque(1 << 20, true);
            for s in PipelineConfig::chunked(4, 1).plan(1 << 20) {
                stage_span(ctx, &shm, &pinned, s, true).unwrap();
            }
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_nanos(), expect.as_nanos());
    }

    #[test]
    fn single_span_matches_whole_payload_cost() {
        let node = NodeConfig::test_tiny();
        let reg = ShmRegistry::new(&node);
        let shm = reg.create("seg", 4096).unwrap();
        let mut sim = Simulation::new();
        sim.spawn("p", move |ctx| {
            let pinned = HostBuffer::opaque(4096, true);
            for s in PipelineConfig::default().plan(4096) {
                stage_span(ctx, &shm, &pinned, s, false).unwrap();
            }
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_nanos(), node.memcpy_time(4096).as_nanos());
    }

    #[test]
    fn record_plan_emits_stage_plan() {
        let t = Tracer::new();
        t.set_analysis(true);
        record_plan(&t, 2, 9, 1 << 20, 4, 8, true);
        let recs = t.analysis_snapshot();
        assert!(matches!(
            &recs[..],
            [AnalysisRecord::StagePlan {
                rank: 2,
                xfer: 9,
                payload: 0x100000,
                k: 4,
                cap: 8,
                adaptive: true,
                ..
            }]
        ));
    }

    #[test]
    fn record_chunk_emits_stage_chunk() {
        let t = Tracer::new();
        t.set_analysis(true);
        record_chunk(
            &t,
            0,
            3,
            9,
            true,
            Span { offset: 0, len: 64 },
            64,
            5,
            "cmd-1",
        );
        let recs = t.analysis_snapshot();
        assert!(matches!(
            &recs[..],
            [AnalysisRecord::StageChunk {
                device: 0,
                rank: 3,
                xfer: 9,
                h2d: true,
                offset: 0,
                len: 64,
                payload: 64,
                buf: 5,
                ..
            }]
        ));
    }
}

//! The cross-rank coalescing planner for the GVM flush path.
//!
//! When a flush admits multiple ranks, each rank's payload sits in its own
//! pinned staging lease and would normally be moved by its own DMA
//! submission, paying the per-op setup latency n times. The planner looks
//! at the admitted members *in flush order* and partitions them into
//! *runs*: maximal stretches of fusable members whose staging leases are
//! **adjacent in host memory** (`prev.place + prev.cap == next.place`),
//! so one large DMA submission can sweep the whole stretch and the
//! follower sub-ops elide the setup latency (see
//! `DmaEngine::continues_fused_run` in `gv-gpu`).
//!
//! The plan is a pure partition: every member lands in exactly one run,
//! runs preserve the input order, and concatenating the runs reproduces
//! the input exactly. Runs of length 1 are *singletons* — submitted on
//! the unfused per-rank path — and only runs of length ≥ 2 become fused
//! submissions with a [`CoalesceOp`](gv_sim::AnalysisRecord::CoalesceOp)
//! manifest.
//!
//! Fusion eligibility is decided per member by the *caller* (quota
//! admission, monolithic single-span transfer, swap not configured) and
//! passed in via [`CoalesceMember::eligible`]; the planner itself gates
//! only on what it can see: the config switch, the per-member payload
//! threshold, lease adjacency, and the group-size cap.

use crate::config::CoalesceConfig;
use crate::pool::StagingLease;

/// One admitted flush member, as the planner sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceMember {
    /// SPMD rank of the member (manifest bookkeeping; not a fusion key).
    pub rank: usize,
    /// Payload bytes the member moves this round.
    pub bytes: u64,
    /// Host address of the member's staging lease
    /// ([`StagingLease::place_addr`]).
    pub place: u64,
    /// Size-class capacity of the lease — adjacency means the *regions*
    /// touch, so the capacity (not the payload) is the stride.
    pub cap: u64,
    /// Pool buffer id backing the lease (manifest bookkeeping).
    pub buf: u64,
    /// Lease generation at planning time (manifest bookkeeping).
    pub generation: u64,
    /// Caller-side gate: `false` for members that must not fuse (multi-
    /// span pipelined transfer, unadmitted under quota, pre-issued H2D,
    /// swap configured). Ineligible members always become singletons.
    pub eligible: bool,
}

impl CoalesceMember {
    /// Build a member from its lease plus the caller-side facts.
    pub fn from_lease(rank: usize, bytes: u64, lease: &StagingLease, eligible: bool) -> Self {
        CoalesceMember {
            rank,
            bytes,
            place: lease.place_addr(),
            cap: lease.capacity(),
            buf: lease.id(),
            generation: lease.generation(),
            eligible,
        }
    }
}

/// An order-preserving partition of flush members into fusable runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescePlan {
    /// Each run holds **indices into the planner's input slice**, in
    /// input order; concatenating all runs yields `0..n` exactly. Runs of
    /// length ≥ 2 are fused submissions, singletons take the unfused path.
    pub runs: Vec<Vec<usize>>,
}

impl CoalescePlan {
    /// Partition `members` (in flush order) into fusable runs under `cfg`.
    ///
    /// A member extends the current run iff coalescing is enabled, both it
    /// and the run's tail are [`eligible`](CoalesceMember::eligible), its
    /// payload is non-zero and at most [`fuse_threshold`]
    /// (`CoalesceConfig::fuse_threshold`), its lease region starts exactly
    /// where the tail's region ends, and the run is still under
    /// [`max_group`](CoalesceConfig::max_group). Otherwise it starts a
    /// new run. With coalescing disabled every member is a singleton.
    ///
    /// [`fuse_threshold`]: CoalesceConfig::fuse_threshold
    pub fn plan(cfg: &CoalesceConfig, members: &[CoalesceMember]) -> Self {
        let mut runs: Vec<Vec<usize>> = Vec::new();
        for (i, m) in members.iter().enumerate() {
            let fusable = cfg.enabled && m.eligible && m.bytes > 0 && m.bytes <= cfg.fuse_threshold;
            let extends = fusable
                && runs.last().is_some_and(|run| {
                    let tail = &members[*run.last().expect("runs are never empty")];
                    // The tail must itself be fusable (a singleton run may
                    // exist because its member was ineligible), the
                    // regions must touch, and the group must have room.
                    tail.eligible
                        && tail.bytes > 0
                        && tail.bytes <= cfg.fuse_threshold
                        && tail.place + tail.cap == m.place
                        && run.len() < cfg.max_group.max(1)
                });
            if extends {
                runs.last_mut().expect("checked above").push(i);
            } else {
                runs.push(vec![i]);
            }
        }
        CoalescePlan { runs }
    }

    /// Total members across all runs.
    pub fn len(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    /// True when the plan covers no members.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of fused submissions (runs of length ≥ 2).
    pub fn fused_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.len() >= 2).count()
    }

    /// Total members riding in fused submissions.
    pub fn fused_members(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.len() >= 2)
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` members with contiguous leases, 4 KiB payload in 4 KiB classes.
    fn adjacent(n: usize) -> Vec<CoalesceMember> {
        (0..n)
            .map(|i| CoalesceMember {
                rank: i,
                bytes: 4096,
                place: i as u64 * 4096,
                cap: 4096,
                buf: i as u64 + 1,
                generation: 1,
                eligible: true,
            })
            .collect()
    }

    fn flat(plan: &CoalescePlan) -> Vec<usize> {
        plan.runs.iter().flatten().copied().collect()
    }

    #[test]
    fn disabled_config_yields_all_singletons() {
        let members = adjacent(4);
        let plan = CoalescePlan::plan(&CoalesceConfig::default(), &members);
        assert_eq!(plan.runs.len(), 4);
        assert_eq!(plan.fused_runs(), 0);
        assert_eq!(flat(&plan), vec![0, 1, 2, 3]);
    }

    #[test]
    fn adjacent_members_fuse_into_one_run() {
        let members = adjacent(4);
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &members);
        assert_eq!(plan.runs, vec![vec![0, 1, 2, 3]]);
        assert_eq!(plan.fused_runs(), 1);
        assert_eq!(plan.fused_members(), 4);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn a_gap_splits_the_run() {
        let mut members = adjacent(4);
        members[2].place += 4096; // hole between members 1 and 2
        members[3].place += 4096;
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &members);
        assert_eq!(plan.runs, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(plan.fused_runs(), 2);
    }

    #[test]
    fn ineligible_and_oversized_members_are_singletons() {
        let mut members = adjacent(5);
        members[1].eligible = false;
        members[3].bytes = (4 << 20) + 1; // over the default threshold
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &members);
        // 0 can't fuse past ineligible 1; 2 can't fuse into oversized 3;
        // 4 can't extend a run whose tail (3) is unfusable.
        assert_eq!(plan.runs, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
        assert_eq!(plan.fused_runs(), 0);
    }

    #[test]
    fn max_group_caps_run_length() {
        let members = adjacent(5);
        let cfg = CoalesceConfig {
            max_group: 2,
            ..CoalesceConfig::on()
        };
        let plan = CoalescePlan::plan(&cfg, &members);
        assert_eq!(plan.runs, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn zero_byte_members_never_fuse() {
        let mut members = adjacent(3);
        members[1].bytes = 0;
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &members);
        assert_eq!(plan.runs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn capacity_not_payload_is_the_adjacency_stride() {
        // Payloads smaller than the size class still fuse when the
        // *regions* touch: stride is the class capacity.
        let members = vec![
            CoalesceMember {
                rank: 0,
                bytes: 3000,
                place: 0,
                cap: 4096,
                buf: 1,
                generation: 1,
                eligible: true,
            },
            CoalesceMember {
                rank: 1,
                bytes: 3000,
                place: 4096,
                cap: 4096,
                buf: 2,
                generation: 1,
                eligible: true,
            },
        ];
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &members);
        assert_eq!(plan.runs, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_input_yields_empty_plan() {
        let plan = CoalescePlan::plan(&CoalesceConfig::on(), &[]);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }
}
